//! Write-ahead log for the ingest path.
//!
//! Samples that arrive between snapshots are appended to a WAL before they
//! are applied, so a crash loses at most the records past the last fsync.
//! Recovery is *newest valid snapshot + WAL replay*: every complete,
//! CRC-valid record is re-applied; a torn tail (a record cut off by the
//! crash, or corrupted past the valid prefix) stops replay and is counted,
//! never mis-read. Records already covered by the snapshot are detected by
//! timestamp and counted as `stale`.
//!
//! A record is `[len u32][crc32 u32][payload]` (little-endian, CRC over the
//! payload); payloads are either a series registration or a sample batch.
//! See `docs/TSDB_FORMAT.md` for the byte-level spec.
//!
//! ```
//! use hpc_tsdb::wal::{WalConfig, WalWriter};
//! use hpc_tsdb::{recover, SeriesMeta, StoreConfig, TsdbStore};
//!
//! let dir = std::env::temp_dir();
//! let wal_path = dir.join(format!("doc-wal-{}.twal", std::process::id()));
//!
//! // Log-then-apply on the ingest path.
//! let store = TsdbStore::default();
//! let id = store.register(SeriesMeta {
//!     name: "facility".into(), unit: "kW".into(), interval_hint: 60,
//! });
//! let mut wal = WalWriter::create(&wal_path, WalConfig::default()).unwrap();
//! wal.append_register(id, &SeriesMeta {
//!     name: "facility".into(), unit: "kW".into(), interval_hint: 60,
//! }).unwrap();
//! let batch = vec![(0i64, 3200.0), (60, 3210.5)];
//! wal.append_batch(id, &batch).unwrap();
//! store.append_batch(id, &batch);
//! wal.sync().unwrap();
//! drop(wal);
//!
//! // After a crash: no snapshot, WAL alone rebuilds the store.
//! let (recovered, report) = recover(None, Some(&wal_path), StoreConfig::default()).unwrap();
//! let replay = report.wal.unwrap();
//! assert_eq!(replay.applied, 1);
//! assert!(!replay.torn);
//! let rid = recovered.lookup("facility").unwrap();
//! let got = recovered.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
//! assert_eq!(got, batch);
//! std::fs::remove_file(&wal_path).unwrap();
//! ```

use crate::persist::{crc32, put_f64, put_i64, put_str, put_u32, put_u64, Cursor, PersistError};
use crate::series::{Series, SeriesMeta};
use crate::store::{SeriesId, StoreConfig, TsdbStore};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic prefix of a WAL file: `HTSDBWL` + format generation byte.
pub const WAL_MAGIC: [u8; 8] = *b"HTSDBWL\x01";

/// Record kinds.
const REC_REGISTER: u8 = 0x01;
const REC_BATCH: u8 = 0x02;

/// Durability knobs for [`WalWriter`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Fsync after this many records. `1` makes every record durable
    /// before the append returns (slowest, loses nothing); `0` never
    /// fsyncs automatically — only [`WalWriter::sync`] and the OS page
    /// cache stand between a crash and the tail. The default (64) bounds
    /// loss to one telemetry tick's worth of batches at campaign scale.
    pub fsync_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { fsync_every: 64 }
    }
}

/// Appender for the write-ahead log. Callers log a record *before* applying
/// it to the store (log-then-apply), so replay can only ever re-apply work,
/// never miss it.
pub struct WalWriter {
    w: BufWriter<File>,
    config: WalConfig,
    records: u64,
    unsynced: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("records", &self.records)
            .field("fsync_every", &self.config.fsync_every)
            .finish()
    }
}

impl WalWriter {
    /// Create (truncating) a WAL at `path` and durably write its magic.
    pub fn create(path: &Path, config: WalConfig) -> Result<Self, PersistError> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        w.write_all(&WAL_MAGIC)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(WalWriter { w, config, records: 0, unsynced: 0 })
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn append_payload(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&crc32(payload).to_le_bytes())?;
        self.w.write_all(payload)?;
        self.records += 1;
        self.unsynced += 1;
        if self.config.fsync_every > 0 && self.unsynced >= self.config.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Log a series registration so a WAL is replayable without the
    /// snapshot that preceded it.
    pub fn append_register(&mut self, id: SeriesId, meta: &SeriesMeta) -> Result<(), PersistError> {
        let mut p = Vec::with_capacity(32 + meta.name.len() + meta.unit.len());
        p.push(REC_REGISTER);
        put_u64(&mut p, id.0);
        put_i64(&mut p, meta.interval_hint);
        put_str(&mut p, &meta.name);
        put_str(&mut p, &meta.unit);
        self.append_payload(&p)
    }

    /// Log a batch of samples for one series.
    pub fn append_batch(&mut self, id: SeriesId, samples: &[(i64, f64)]) -> Result<(), PersistError> {
        let mut p = Vec::with_capacity(16 + samples.len() * 16);
        p.push(REC_BATCH);
        put_u64(&mut p, id.0);
        put_u32(&mut p, samples.len() as u32);
        for &(ts, v) in samples {
            put_i64(&mut p, ts);
            put_f64(&mut p, v);
        }
        self.append_payload(&p)
    }

    /// Flush buffered records and fsync them to disk.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.w.flush()?;
        self.w.get_ref().sync_data()?;
        self.unsynced = 0;
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best effort: push buffered records to the OS. A crash between the
        // last fsync and here loses the tail, which replay handles.
        let _ = self.w.flush();
    }
}

/// What a WAL replay did, record by record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReplayStats {
    /// Complete, CRC-valid records read.
    pub records: u64,
    /// Registration records applied (or confirmed already present).
    pub registered: u64,
    /// Batches appended to the store.
    pub applied: u64,
    /// Batches skipped because the snapshot already contained them
    /// (every timestamp at or before the recovered series tail).
    pub stale: u64,
    /// Records refused: unknown series, out-of-order timestamps, or a
    /// registration conflicting with the recovered registry.
    pub rejected: u64,
    /// Whether replay stopped at a torn tail (truncated or CRC-invalid
    /// trailing record).
    pub torn: bool,
    /// Bytes discarded past the valid prefix.
    pub discarded_bytes: u64,
}

/// Replay a WAL stream into `store`. Stops (without error) at the first
/// torn record — a crash tears the tail, and everything before it is a
/// valid prefix; see [`WalReplayStats::torn`].
pub fn replay(store: &TsdbStore, r: &mut impl Read) -> Result<WalReplayStats, PersistError> {
    let mut stats = WalReplayStats::default();
    let mut magic = [0u8; 8];
    let got = read_up_to(r, &mut magic)?;
    if got < 8 {
        // The crash landed inside the magic itself: an empty valid prefix.
        stats.torn = true;
        stats.discarded_bytes = got as u64;
        return Ok(stats);
    }
    if magic != WAL_MAGIC {
        return Err(PersistError::BadMagic);
    }

    loop {
        let mut head = [0u8; 8];
        let got = read_up_to(r, &mut head)?;
        if got == 0 {
            break; // clean end of log
        }
        if got < 8 {
            stats.torn = true;
            stats.discarded_bytes = got as u64;
            break;
        }
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as u64;
        let stored_crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        let mut payload = Vec::new();
        let got = r.take(len).read_to_end(&mut payload)? as u64;
        if got < len || crc32(&payload) != stored_crc {
            // Torn or corrupt tail. Drain what remains only to report how
            // much was discarded; none of it is applied.
            let rest = std::io::copy(r, &mut std::io::sink())?;
            stats.torn = true;
            stats.discarded_bytes = 8 + got + rest;
            break;
        }
        stats.records += 1;
        apply_record(store, &payload, &mut stats)?;
    }
    Ok(stats)
}

fn apply_record(
    store: &TsdbStore,
    payload: &[u8],
    stats: &mut WalReplayStats,
) -> Result<(), PersistError> {
    let mut c = Cursor::new(payload);
    match c.u8("record.kind")? {
        REC_REGISTER => {
            let id = SeriesId(c.u64("register.id")?);
            let interval_hint = c.i64("register.interval_hint")?;
            let name = c.str_("register.name")?;
            let unit = c.str_("register.unit")?;
            match store.lookup(&name) {
                Some(existing) if existing == id => stats.registered += 1,
                Some(_) => stats.rejected += 1,
                None => {
                    let meta = SeriesMeta { name, unit, interval_hint };
                    if store.install_recovered(id, Series::new(meta)) {
                        stats.registered += 1;
                    } else {
                        stats.rejected += 1; // id taken by another series
                    }
                }
            }
        }
        REC_BATCH => {
            let id = SeriesId(c.u64("batch.id")?);
            let n = c.u32("batch.count")? as usize;
            let mut samples = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let ts = c.i64("batch.ts")?;
                let v = c.f64("batch.value")?;
                samples.push((ts, v));
            }
            let tail = store.with_series(id, |s| s.last_ts()).flatten();
            let newest = samples.last().map(|&(ts, _)| ts);
            match (tail, newest) {
                // Entirely at or before the recovered tail: the snapshot
                // already holds these samples (batches are applied whole, so
                // a batch is never split across the snapshot boundary).
                (Some(t), Some(n)) if n <= t => stats.stale += 1,
                _ => match store.try_append_batch(id, &samples) {
                    Ok(()) => stats.applied += 1,
                    Err(_) => stats.rejected += 1,
                },
            }
        }
        k => return Err(PersistError::Malformed(format!("unknown WAL record kind {k:#x}"))),
    }
    Ok(())
}

/// [`replay`] over a file path.
pub fn replay_path(store: &TsdbStore, path: &Path) -> Result<WalReplayStats, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    replay(store, &mut r)
}

/// Like `read_exact` but returns how many bytes were read instead of
/// erroring at EOF — WAL tails are allowed to be short.
fn read_up_to(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, PersistError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    Ok(filled)
}

/// What [`recover`] rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Series restored from the snapshot (0 when no snapshot was given).
    pub snapshot_series: u64,
    /// Samples restored from the snapshot.
    pub snapshot_samples: u64,
    /// WAL replay breakdown; `None` when no WAL was given or the file does
    /// not exist (a crash before the first WAL write).
    pub wal: Option<WalReplayStats>,
}

/// Rebuild a store from the newest valid snapshot plus a WAL replay.
///
/// * `snapshot: None` starts from an empty store (WAL-only recovery).
/// * `wal: None` — or a WAL path that does not exist — skips replay.
///
/// A corrupt or truncated *snapshot* is a typed error: the snapshot is the
/// base image and must be accepted whole. A torn *WAL tail* is expected
/// after a crash and is reported in [`RecoveryReport::wal`], with every
/// record before the tear applied.
pub fn recover(
    snapshot: Option<&Path>,
    wal: Option<&Path>,
    config: StoreConfig,
) -> Result<(TsdbStore, RecoveryReport), PersistError> {
    let mut report = RecoveryReport::default();
    let store = match snapshot {
        Some(path) => {
            let store = TsdbStore::open_snapshot_path(path, config)?;
            report.snapshot_series = store.series_count() as u64;
            report.snapshot_samples = store.total_samples();
            store
        }
        None => TsdbStore::new(config),
    };
    if let Some(path) = wal {
        if path.exists() {
            report.wal = Some(replay_path(&store, path)?);
        }
    }
    Ok((store, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str) -> SeriesMeta {
        SeriesMeta { name: name.into(), unit: "kW".into(), interval_hint: 60 }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tsdb-wal-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn wal_only_recovery_replays_everything() {
        let path = tmp("replay.twal");
        let store = TsdbStore::default();
        let id = store.register(meta("s"));
        let mut wal = WalWriter::create(&path, WalConfig { fsync_every: 1 }).unwrap();
        wal.append_register(id, &meta("s")).unwrap();
        for start in (0..300i64).step_by(100) {
            let batch: Vec<(i64, f64)> =
                (start..start + 100).map(|i| (i * 60, i as f64 * 0.5)).collect();
            wal.append_batch(id, &batch).unwrap();
            store.append_batch(id, &batch);
        }
        drop(wal);

        let (back, report) = recover(None, Some(&path), StoreConfig::default()).unwrap();
        let replay = report.wal.unwrap();
        assert_eq!(replay.records, 4);
        assert_eq!(replay.registered, 1);
        assert_eq!(replay.applied, 3);
        assert_eq!((replay.stale, replay.rejected), (0, 0));
        assert!(!replay.torn);
        let a = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        let rid = back.lookup("s").unwrap();
        let b = back.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_onto_snapshot_skips_stale_batches() {
        let snap_path = tmp("stale.tsnap");
        let wal_path = tmp("stale.twal");
        let store = TsdbStore::default();
        let id = store.register(meta("s"));
        let mut wal = WalWriter::create(&wal_path, WalConfig::default()).unwrap();
        wal.append_register(id, &meta("s")).unwrap();
        // Two batches logged and applied, then a snapshot, then one more.
        for start in [0i64, 100] {
            let batch: Vec<(i64, f64)> = (start..start + 100).map(|i| (i * 60, i as f64)).collect();
            wal.append_batch(id, &batch).unwrap();
            store.append_batch(id, &batch);
        }
        store.snapshot_to_path(&snap_path).unwrap();
        let batch: Vec<(i64, f64)> = (200..300i64).map(|i| (i * 60, i as f64)).collect();
        wal.append_batch(id, &batch).unwrap();
        store.append_batch(id, &batch);
        wal.sync().unwrap();
        drop(wal);

        let (back, report) =
            recover(Some(&snap_path), Some(&wal_path), StoreConfig::default()).unwrap();
        let replay = report.wal.unwrap();
        assert_eq!(report.snapshot_samples, 200);
        assert_eq!(replay.stale, 2, "pre-snapshot batches detected as stale");
        assert_eq!(replay.applied, 1, "post-snapshot batch replayed");
        assert_eq!(back.total_samples(), 300);
        let rid = back.lookup("s").unwrap();
        let got = back.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        assert_eq!(got.len(), 300);
        assert_eq!(got[299], (299 * 60, 299.0));
        std::fs::remove_file(&snap_path).unwrap();
        std::fs::remove_file(&wal_path).unwrap();
    }

    #[test]
    fn torn_tail_recovers_the_valid_prefix() {
        let path = tmp("torn.twal");
        let store = TsdbStore::default();
        let id = store.register(meta("s"));
        let mut wal = WalWriter::create(&path, WalConfig { fsync_every: 1 }).unwrap();
        wal.append_register(id, &meta("s")).unwrap();
        for start in [0i64, 50, 100] {
            let batch: Vec<(i64, f64)> = (start..start + 50).map(|i| (i * 60, i as f64)).collect();
            wal.append_batch(id, &batch).unwrap();
        }
        drop(wal);

        let full = std::fs::read(&path).unwrap();
        // Tear every byte boundary inside the final record: the first two
        // batches must always survive, the third must never half-apply.
        let last_record_len = 8 + (1 + 8 + 4 + 50 * 16);
        for cut in (full.len() - last_record_len + 1)..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let fresh = TsdbStore::default();
            let stats = replay_path(&fresh, &path).unwrap();
            assert!(stats.torn, "cut at {cut} not reported torn");
            assert_eq!(stats.applied, 2);
            assert_eq!(fresh.total_samples(), 100);
            let rid = fresh.lookup("s").unwrap();
            let got = fresh.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
            assert_eq!(got.len(), 100, "exactly the valid prefix");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_in_wal_stops_at_valid_prefix_or_errors() {
        let path = tmp("flip.twal");
        let store = TsdbStore::default();
        let id = store.register(meta("s"));
        let mut wal = WalWriter::create(&path, WalConfig { fsync_every: 1 }).unwrap();
        wal.append_register(id, &meta("s")).unwrap();
        let batch: Vec<(i64, f64)> = (0..50i64).map(|i| (i * 60, i as f64)).collect();
        wal.append_batch(id, &batch).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        for byte in 0..full.len() {
            let mut evil = full.clone();
            evil[byte] ^= 0x10;
            let fresh = TsdbStore::default();
            // Magic flips surface as typed errors; otherwise a flip in a
            // record stops replay there and the store holds only records
            // before the flip — never wrong data.
            if let Ok(stats) = replay(&fresh, &mut &evil[..]) {
                if stats.applied == 1 {
                    let rid = fresh.lookup("s").unwrap();
                    let got =
                        fresh.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
                    assert_eq!(got, batch, "flip at {byte} corrupted applied data");
                } else {
                    assert_eq!(fresh.total_samples(), 0);
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}
