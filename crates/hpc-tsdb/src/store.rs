//! Sharded, concurrent store: series are hashed across shard locks so
//! independent writers never contend, and an optional channel-fed pipeline
//! gives one dedicated writer thread per shard.

use crate::cache::ChunkCache;
use crate::query::{QueryCounters, QueryStats};
use crate::rollup::Aggregate;
use crate::series::{Series, SeriesMeta};
use crate::wal::WalWriter;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Opaque series handle. The id embeds nothing; routing is `id % shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u64);

/// Why the store refused a batch of samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The series id was never registered.
    UnknownSeries(SeriesId),
    /// A timestamp was not strictly after its predecessor (within the
    /// batch, or relative to the series' last stored sample).
    OutOfOrder {
        /// The series the batch targeted.
        series: SeriesId,
        /// The offending timestamp.
        ts: i64,
        /// The timestamp it failed to advance past.
        last: i64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnknownSeries(id) => write!(f, "unknown series {id:?}"),
            IngestError::OutOfOrder { series, ts, last } => {
                write!(f, "out-of-order sample for {series:?}: {ts} not after {last}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Default compaction target, in samples per rewritten chunk: eight
/// standard 512-sample chunks. Large enough that a month-scale scan
/// touches ~8x fewer chunk headers, small enough that a partial window
/// re-decodes at most ~4096 samples.
pub const COMPACT_TARGET_SAMPLES: u32 = crate::series::CHUNK_SAMPLES * 8;

/// What a [`TsdbStore::compact`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Series that had at least one chunk run rewritten.
    pub series: u64,
    /// Sealed chunks across the store before the pass.
    pub chunks_before: u64,
    /// Sealed chunks across the store after the pass.
    pub chunks_after: u64,
    /// Source chunks rewritten into zone-mapped chunks (also added to
    /// [`crate::QueryStats::chunks_compacted`]).
    pub chunks_compacted: u64,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of independently locked shards (and pipeline writer
    /// threads). Must be at least 1.
    pub shards: usize,
    /// Channel capacity, in batches, per pipeline shard.
    pub channel_capacity: usize,
    /// Decoded-chunk cache size, in chunks (≈ 8 KiB per cached chunk).
    /// Zero disables the cache.
    pub chunk_cache_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { shards: 8, channel_capacity: 256, chunk_cache_capacity: 4096 }
    }
}

#[derive(Default)]
struct Shard {
    series: HashMap<u64, Series>,
}

/// One series frozen into a [`ReadView`], stamped with the mutation count
/// it was cloned at so the next publication can reuse the `Arc` when the
/// live series has not moved.
struct ViewEntry {
    mutations: u64,
    frozen: Arc<Series>,
}

/// An immutable, epoch-stamped snapshot of every series in the store.
///
/// A view is *published*: built under short per-shard read locks once
/// ([`TsdbStore::publish_view`]), then handed to readers as a shared
/// `Arc`. Query evaluation against a view touches no shard lock at all —
/// sealed chunks inside the frozen series are the same refcounted byte
/// blocks the writer holds (cloning a [`Series`] bumps `Bytes` refcounts,
/// it does not copy chunk payloads), and the active tail / rollup state
/// are plain copies taken at publication.
///
/// Freshness is by generation: the store bumps a monotonic counter on
/// every mutation, and a view answers for reads only while its stamped
/// generation still equals the store's ([`TsdbStore::with_series_read`]).
/// The stamp is loaded *before* the shards are walked, so a view stamped
/// `G` contains at least every mutation counted in `G` — racing extras
/// land in the view but also bump the generation past `G`, retiring the
/// view before the extra could ever be served as stale.
pub struct ReadView {
    generation: u64,
    series: HashMap<u64, ViewEntry>,
}

impl ReadView {
    /// The store generation this view was stamped with.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Series captured in this view.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// The frozen series for `id`, if it was registered at publication.
    pub fn get(&self, id: SeriesId) -> Option<&Arc<Series>> {
        self.series.get(&id.0).map(|e| &e.frozen)
    }
}

/// The embedded time-series store. Cheap to share: `TsdbStore` is a handle
/// over `Arc`ed shards, so clones refer to the same data.
#[derive(Clone)]
pub struct TsdbStore {
    shards: Arc<Vec<RwLock<Shard>>>,
    registry: Arc<RwLock<HashMap<String, SeriesId>>>,
    next_id: Arc<RwLock<u64>>,
    cache: Arc<ChunkCache>,
    counters: Arc<QueryCounters>,
    /// Bumped (release) once per mutating call — append, batch, tick,
    /// quarantine, register, recovery install, compaction. Readers load it
    /// (acquire) to decide whether the published view is still current and
    /// result caches key replies on it.
    generation: Arc<AtomicU64>,
    /// The most recently published [`ReadView`]. The slot lock is read for
    /// one `Arc` clone per query and write-locked only at publication — it
    /// is not a shard lock, so view readers never contend with the writer.
    view: Arc<RwLock<Arc<ReadView>>>,
    /// Whether [`Self::publish_view`] has ever run on this store — lets
    /// maintenance (compaction) refresh the view only on stores that are
    /// actually serving, instead of cloning every series of a store nobody
    /// reads through views.
    view_published: Arc<AtomicBool>,
    config: StoreConfig,
}

impl Default for TsdbStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl TsdbStore {
    /// Create a store with the given sharding.
    ///
    /// # Panics
    /// Panics if `config.shards == 0`.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "store needs at least one shard");
        let shards = (0..config.shards).map(|_| RwLock::new(Shard::default())).collect();
        TsdbStore {
            shards: Arc::new(shards),
            registry: Arc::new(RwLock::new(HashMap::new())),
            next_id: Arc::new(RwLock::new(0)),
            cache: Arc::new(ChunkCache::new(config.chunk_cache_capacity)),
            counters: Arc::new(QueryCounters::default()),
            generation: Arc::new(AtomicU64::new(0)),
            view: Arc::new(RwLock::new(Arc::new(ReadView {
                generation: 0,
                series: HashMap::new(),
            }))),
            view_published: Arc::new(AtomicBool::new(false)),
            config,
        }
    }

    /// The store's mutation epoch: a monotonic counter bumped once per
    /// mutating call. Two equal readings with no mutation in between
    /// guarantee the store answered identically at both instants — the
    /// key result caches and published views are validated against.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Publish an immutable [`ReadView`] of every series, stamped with the
    /// generation read *before* the shards are walked (so the stamp is
    /// conservative — see [`ReadView`]). Series unchanged since the last
    /// publication are re-shared, not re-cloned. Costs one short read lock
    /// per shard; meant for epoch boundaries (a campaign serve step, the
    /// end of a compaction pass), not for per-sample ingest paths.
    pub fn publish_view(&self) -> Arc<ReadView> {
        let generation = self.generation();
        let old = self.view.read().clone();
        let mut series = HashMap::with_capacity(old.series.len().max(self.series_count()));
        for shard in self.shards.iter() {
            let shard = shard.read();
            for (&id, live) in shard.series.iter() {
                let entry = match old.series.get(&id) {
                    Some(e) if e.mutations == live.mutation_count() => {
                        ViewEntry { mutations: e.mutations, frozen: Arc::clone(&e.frozen) }
                    }
                    _ => ViewEntry {
                        mutations: live.mutation_count(),
                        frozen: Arc::new(live.clone()),
                    },
                };
                series.insert(id, entry);
            }
        }
        let view = Arc::new(ReadView { generation, series });
        *self.view.write() = Arc::clone(&view);
        self.view_published.store(true, Ordering::Release);
        view
    }

    /// The most recently published view (the initial view is empty at
    /// generation 0, which is exactly what an untouched store holds).
    pub fn read_view(&self) -> Arc<ReadView> {
        self.view.read().clone()
    }

    /// Run `f` with read access to a series, preferring the published
    /// [`ReadView`]: when the view's generation still matches the store's,
    /// evaluation runs against the frozen series without touching any
    /// shard lock; otherwise this falls back to [`Self::with_series`]
    /// (short shard read lock), so answers never go stale. `None` if the
    /// id is unknown.
    pub fn with_series_read<R>(&self, id: SeriesId, f: impl FnOnce(&Series) -> R) -> Option<R> {
        let generation = self.generation();
        let view = self.view.read().clone();
        if view.generation == generation {
            return view.get(id).map(|s| f(s));
        }
        self.with_series(id, f)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The store's decoded-chunk cache (shared by every clone of this
    /// handle).
    pub fn chunk_cache(&self) -> &ChunkCache {
        &self.cache
    }

    /// Snapshot of the query-layer counters: plans chosen, chunks decoded
    /// vs. served from cache, samples scanned, wall time.
    pub fn query_stats(&self) -> QueryStats {
        self.counters.snapshot()
    }

    /// Zero the query-layer counters (the chunk cache keeps its contents;
    /// call [`ChunkCache::clear`] separately for a cold-cache experiment).
    pub fn reset_query_stats(&self) {
        self.counters.reset();
    }

    pub(crate) fn query_counters(&self) -> &QueryCounters {
        &self.counters
    }

    fn shard_of(&self, id: SeriesId) -> usize {
        (id.0 % self.config.shards as u64) as usize
    }

    /// Create (or look up) the series named `meta.name` and return its id.
    /// Re-registering an existing name returns the existing id.
    pub fn register(&self, meta: SeriesMeta) -> SeriesId {
        if let Some(&id) = self.registry.read().get(&meta.name) {
            return id;
        }
        let mut registry = self.registry.write();
        if let Some(&id) = registry.get(&meta.name) {
            return id; // lost the race to another registrar
        }
        let mut next = self.next_id.write();
        let id = SeriesId(*next);
        *next += 1;
        registry.insert(meta.name.clone(), id);
        self.shards[self.shard_of(id)].write().series.insert(id.0, Series::new(meta));
        self.bump_generation();
        id
    }

    /// Look a series id up by name.
    pub fn lookup(&self, name: &str) -> Option<SeriesId> {
        self.registry.read().get(name).copied()
    }

    /// Every registered series as `(id, name)`, sorted by id — the stable
    /// iteration order used by snapshots.
    pub(crate) fn series_entries(&self) -> Vec<(SeriesId, String)> {
        let registry = self.registry.read();
        let mut entries: Vec<(SeriesId, String)> =
            registry.iter().map(|(name, &id)| (id, name.clone())).collect();
        entries.sort();
        entries
    }

    /// The id the next [`Self::register`] call would hand out.
    pub(crate) fn next_series_id(&self) -> u64 {
        *self.next_id.read()
    }

    /// Ensure future registrations allocate ids at or past `floor`.
    pub(crate) fn bump_next_id(&self, floor: u64) {
        let mut next = self.next_id.write();
        *next = (*next).max(floor);
    }

    /// Install a recovered series under its original id, preserving the
    /// name→id mapping across restarts. Returns `false` (installing
    /// nothing) when the name or id is already taken.
    pub(crate) fn install_recovered(&self, id: SeriesId, series: Series) -> bool {
        let mut registry = self.registry.write();
        if registry.contains_key(&series.meta().name) {
            return false;
        }
        let mut next = self.next_id.write();
        let mut shard = self.shards[self.shard_of(id)].write();
        if shard.series.contains_key(&id.0) {
            return false;
        }
        registry.insert(series.meta().name.clone(), id);
        shard.series.insert(id.0, series);
        *next = (*next).max(id.0 + 1);
        self.bump_generation();
        true
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.registry.read().len()
    }

    /// Every registered series as `(id, metadata, stored samples)`, sorted
    /// by id — the discovery surface a query service's `ListSeries`
    /// request answers from. Sample counts are read per shard under short
    /// read locks, so the catalog is safe to take during live ingest (a
    /// count may trail concurrent appends by a tick).
    pub fn series_catalog(&self) -> Vec<(SeriesId, SeriesMeta, u64)> {
        let mut out: Vec<(SeriesId, SeriesMeta, u64)> = Vec::with_capacity(self.series_count());
        for shard in self.shards.iter() {
            let shard = shard.read();
            for (&id, series) in shard.series.iter() {
                out.push((SeriesId(id), series.meta().clone(), series.len()));
            }
        }
        out.sort_by_key(|&(id, _, _)| id);
        out
    }

    /// Append one sample to a series.
    ///
    /// # Panics
    /// Panics if the id is unknown or the timestamp is not strictly
    /// increasing within the series.
    pub fn append(&self, id: SeriesId, ts: i64, value: f64) {
        {
            let mut shard = self.shards[self.shard_of(id)].write();
            shard
                .series
                .get_mut(&id.0)
                .unwrap_or_else(|| panic!("unknown series {id:?}"))
                .append(ts, value);
        }
        self.bump_generation();
    }

    /// Append a batch of `(ts, value)` samples to one series under a
    /// single lock acquisition.
    ///
    /// # Panics
    /// Panics on an unknown id or non-monotonic timestamps; see
    /// [`Self::try_append_batch`] for the non-panicking form.
    pub fn append_batch(&self, id: SeriesId, samples: &[(i64, f64)]) {
        if let Err(e) = self.try_append_batch(id, samples) {
            panic!("append_batch: {e}");
        }
    }

    /// Append a batch of `(ts, value)` samples to one series under a
    /// single lock acquisition, refusing (with no partial write) batches
    /// for unregistered series or with non-monotonic timestamps. This is
    /// what the ingest pipeline's shard writers use, so a poisoned batch
    /// is counted and dropped instead of killing the writer thread.
    pub fn try_append_batch(&self, id: SeriesId, samples: &[(i64, f64)]) -> Result<(), IngestError> {
        if samples.is_empty() {
            return Ok(());
        }
        let mut shard = self.shards[self.shard_of(id)].write();
        let series =
            shard.series.get_mut(&id.0).ok_or(IngestError::UnknownSeries(id))?;
        // Validate the whole batch before touching the series: the batch
        // must be strictly increasing and start after the stored tail.
        let mut last = series.last_ts();
        for &(ts, _) in samples {
            if let Some(l) = last {
                if ts <= l {
                    return Err(IngestError::OutOfOrder { series: id, ts, last: l });
                }
            }
            last = Some(ts);
        }
        for &(ts, v) in samples {
            series.append(ts, v);
        }
        drop(shard);
        self.bump_generation();
        Ok(())
    }

    /// Append one tick's worth of samples across many series — one
    /// `(id, value)` pair per series, all stamped `ts`. This is the shape
    /// of a per-node telemetry tick (thousands of series, one sample
    /// each): samples are grouped by shard, each shard's write lock is
    /// taken **once**, and the shards are fanned out over rayon.
    ///
    /// Returns the number of samples refused (unknown series, or `ts` not
    /// strictly after that series' stored tail). Refusals are per-sample:
    /// one bad series never blocks the rest of the tick.
    pub fn append_tick(&self, ts: i64, samples: &[(SeriesId, f64)]) -> u64 {
        self.append_multi_impl(samples.iter().map(|&(id, v)| (id, ts, v)), samples.len())
    }

    /// Append samples spanning many series under one lock acquisition per
    /// shard, fanning the shards out over rayon. Samples for one series
    /// must appear in (strictly increasing) timestamp order within the
    /// slice; per-series order is preserved because a series maps to
    /// exactly one shard bucket, which is appended sequentially.
    ///
    /// Returns the number of refused samples (unknown series,
    /// non-monotonic timestamps). See [`Self::append_tick`] for the
    /// common single-timestamp form.
    pub fn append_batch_multi(&self, samples: &[(SeriesId, i64, f64)]) -> u64 {
        self.append_multi_impl(samples.iter().copied(), samples.len())
    }

    fn append_multi_impl(
        &self,
        samples: impl Iterator<Item = (SeriesId, i64, f64)>,
        len_hint: usize,
    ) -> u64 {
        let n_shards = self.config.shards;
        // Bucket by shard, preserving input order within each bucket so
        // per-series monotonicity survives the regrouping.
        let mut buckets: Vec<Vec<(u64, i64, f64)>> = vec![Vec::new(); n_shards];
        let per_shard_hint = len_hint / n_shards + 1;
        for b in &mut buckets {
            b.reserve(per_shard_hint);
        }
        let mut total = 0u64;
        for (id, ts, v) in samples {
            buckets[(id.0 % n_shards as u64) as usize].push((id.0, ts, v));
            total += 1;
        }
        let occupied = buckets.iter().filter(|b| !b.is_empty()).count();
        let rejected = AtomicU64::new(0);
        let apply = |shard_idx: usize, bucket: &[(u64, i64, f64)]| {
            let mut shard = self.shards[shard_idx].write();
            let mut bad = 0u64;
            for &(id, ts, v) in bucket {
                match shard.series.get_mut(&id) {
                    Some(series) if series.last_ts().is_none_or(|l| ts > l) => {
                        series.append(ts, v);
                    }
                    _ => bad += 1,
                }
            }
            if bad > 0 {
                rejected.fetch_add(bad, Ordering::Relaxed);
            }
        };
        if occupied <= 1 {
            // One shard touched (or nothing to do): skip the fork-join.
            for (shard_idx, bucket) in buckets.iter().enumerate() {
                if !bucket.is_empty() {
                    apply(shard_idx, bucket);
                }
            }
        } else {
            let apply = &apply;
            rayon::scope(|s| {
                for (shard_idx, bucket) in buckets.iter().enumerate() {
                    if !bucket.is_empty() {
                        s.spawn(move |_| apply(shard_idx, bucket));
                    }
                }
            });
        }
        let rejected = rejected.load(Ordering::Relaxed);
        if total > rejected {
            // One epoch bump per tick/batch call, not per sample — any
            // sample landing invalidates views and result caches.
            self.bump_generation();
        }
        rejected
    }

    /// Record a refused sample into a series' quality mask (see
    /// [`crate::quality`]). Unknown ids are ignored.
    pub fn quarantine(&self, id: SeriesId, ts: i64, value: f64, reason: crate::quality::QuarantineReason) {
        let mut shard = self.shards[self.shard_of(id)].write();
        if let Some(series) = shard.series.get_mut(&id.0) {
            series.quarantine(crate::quality::QuarantinedSample { ts, value, reason });
            drop(shard);
            // Gap-coverage answers depend on the quality mask, so a
            // quarantine is a mutation like any other.
            self.bump_generation();
        }
    }

    /// Run `f` with read access to a series; `None` if the id is unknown.
    pub fn with_series<R>(&self, id: SeriesId, f: impl FnOnce(&Series) -> R) -> Option<R> {
        let shard = self.shards[self.shard_of(id)].read();
        shard.series.get(&id.0).map(f)
    }

    /// Total samples across every series.
    pub fn total_samples(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().series.values().map(Series::len).sum::<u64>())
            .sum()
    }

    /// Total compressed bytes held across every series.
    pub fn total_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().series.values().map(Series::size_bytes).sum::<usize>())
            .sum()
    }

    /// Compact every series with the default target chunk size
    /// ([`COMPACT_TARGET_SAMPLES`]). See [`Self::compact_with`].
    pub fn compact(&self) -> CompactionStats {
        self.compact_with(COMPACT_TARGET_SAMPLES)
    }

    /// Rewrite runs of small sealed chunks into large zone-mapped chunks,
    /// series by series (see [`Series::compact`]). Each shard is held
    /// under its write lock only while its own series re-encode, so
    /// ingest and queries on other shards proceed throughout; queries on
    /// the same shard see either the old or the new chunk list, both of
    /// which answer identically. Decoded-chunk cache entries for the
    /// replaced chunks need no invalidation: the cache keys on chunk
    /// uids, the compacted chunk has a fresh uid, and orphaned entries
    /// age out of the LRU.
    pub fn compact_with(&self, target_samples: u32) -> CompactionStats {
        let mut stats = CompactionStats::default();
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            for series in shard.series.values_mut() {
                let before = series.chunks().len() as u64;
                let rewritten = series.compact(target_samples);
                stats.chunks_before += before;
                stats.chunks_after += series.chunks().len() as u64;
                stats.chunks_compacted += u64::from(rewritten);
                if rewritten > 0 {
                    stats.series += 1;
                }
            }
        }
        self.counters.add_chunks_compacted(stats.chunks_compacted);
        if stats.chunks_compacted > 0 {
            // Compacted series answer bit-identically, but published views
            // and result caches hold the pre-compaction chunk lists; bump
            // the epoch so they retire, and refresh the view on stores
            // that are serving through one.
            self.bump_generation();
            if self.view_published.load(Ordering::Acquire) {
                self.publish_view();
            }
        }
        stats
    }

    /// Sum of every series' total aggregate (count/sum/min/max merge).
    pub fn global_aggregate(&self) -> Aggregate {
        let mut agg = Aggregate::new();
        for shard in self.shards.iter() {
            for series in shard.read().series.values() {
                agg.merge(series.total_aggregate());
            }
        }
        agg
    }

    /// Start the concurrent ingest pipeline: one writer thread per shard,
    /// fed by bounded channels. Returns a cloneable handle for producers.
    /// Samples for one series always land on the same shard thread, so
    /// per-series ordering is preserved end to end.
    pub fn pipeline(&self) -> IngestPipeline {
        self.build_pipeline(None)
    }

    /// Like [`Self::pipeline`], but every batch is appended to `wal`
    /// *before* it is queued for its shard writer (log-then-apply), so a
    /// crash between snapshot and shutdown is recoverable by
    /// [`crate::recover`]. Registration records for every currently
    /// registered series are written first, making the WAL replayable even
    /// without a snapshot. The WAL is flushed and fsynced on `close()`.
    pub fn pipeline_with_wal(&self, mut wal: WalWriter) -> IngestPipeline {
        for (id, _) in self.series_entries() {
            let meta = self
                .with_series(id, |s| s.meta().clone())
                .expect("registered series exists");
            wal.append_register(id, &meta).expect("tsdb WAL registration append failed");
        }
        self.build_pipeline(Some(wal))
    }

    fn build_pipeline(&self, wal: Option<WalWriter>) -> IngestPipeline {
        let mut senders = Vec::with_capacity(self.config.shards);
        let mut workers = Vec::with_capacity(self.config.shards);
        let rejected = Arc::new(AtomicU64::new(0));
        for shard_idx in 0..self.config.shards {
            let (tx, rx): (Sender<Batch>, Receiver<Batch>) =
                channel::bounded(self.config.channel_capacity);
            let store = self.clone();
            let rejected = Arc::clone(&rejected);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tsdb-shard-{shard_idx}"))
                    .spawn(move || {
                        // A bad batch (unknown series, out-of-order stamps)
                        // must not kill the writer: every later batch for
                        // this shard would fail to send and the eventual
                        // join would re-panic. Count it and keep draining.
                        for batch in rx.iter() {
                            if store.try_append_batch(batch.id, &batch.samples).is_err() {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawn tsdb shard writer"),
            );
            senders.push(tx);
        }
        IngestPipeline {
            senders,
            workers,
            shards: self.config.shards,
            rejected,
            wal: wal.map(Mutex::new),
        }
    }
}

/// A routed unit of ingest work: samples for one series.
#[derive(Debug)]
struct Batch {
    id: SeriesId,
    samples: Vec<(i64, f64)>,
}

/// Handle over the per-shard writer threads. Drop-safe: `close()` (or
/// drop) disconnects the channels and joins the writers.
pub struct IngestPipeline {
    senders: Vec<Sender<Batch>>,
    workers: Vec<JoinHandle<()>>,
    shards: usize,
    rejected: Arc<AtomicU64>,
    /// Optional write-ahead log; batches are logged before they are queued.
    wal: Option<Mutex<WalWriter>>,
}

impl IngestPipeline {
    /// Queue a batch of samples for one series, blocking when the shard's
    /// channel is full (backpressure). With a WAL attached
    /// ([`TsdbStore::pipeline_with_wal`]) the batch is logged first.
    ///
    /// # Panics
    /// Panics if a shard writer exited early or the WAL append fails.
    pub fn send(&self, id: SeriesId, samples: Vec<(i64, f64)>) {
        if let Some(wal) = &self.wal {
            wal.lock().append_batch(id, &samples).expect("tsdb WAL append failed");
        }
        let shard = (id.0 % self.shards as u64) as usize;
        self.senders[shard]
            .send(Batch { id, samples })
            .expect("tsdb shard writer exited early");
    }

    /// Records written to the attached WAL so far (0 without a WAL).
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.lock().records())
    }

    /// Batches the shard writers refused so far (unknown series,
    /// out-of-order timestamps). Refused batches are dropped whole; the
    /// writer keeps draining.
    pub fn rejected_batches(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Live view of the rejected-batch counter, safe to poll from another
    /// thread while ingest is running — what a query service's
    /// introspection endpoint reports without stopping the pipeline. The
    /// count is monotonic; a batch in flight to its shard writer is counted
    /// once the writer refuses it, so a reading may trail sends by the
    /// channel depth but never overcounts.
    pub fn rejected_so_far(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Disconnect producers and wait for every queued batch to be applied;
    /// returns the total number of rejected batches. An attached WAL is
    /// flushed and fsynced so the log is durable through shutdown.
    pub fn close(mut self) -> u64 {
        self.senders.clear();
        for w in self.workers.drain(..) {
            w.join().expect("tsdb shard writer panicked");
        }
        if let Some(wal) = self.wal.take() {
            wal.into_inner().sync().expect("tsdb WAL sync failed");
        }
        self.rejected.load(Ordering::Relaxed)
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str) -> SeriesMeta {
        SeriesMeta { name: name.into(), unit: "kW".into(), interval_hint: 60 }
    }

    #[test]
    fn register_is_idempotent() {
        let store = TsdbStore::default();
        let a = store.register(meta("facility"));
        let b = store.register(meta("facility"));
        assert_eq!(a, b);
        assert_eq!(store.series_count(), 1);
        assert_eq!(store.lookup("facility"), Some(a));
        assert_eq!(store.lookup("nope"), None);
    }

    #[test]
    fn series_land_on_distinct_shards() {
        let store = TsdbStore::new(StoreConfig { shards: 4, channel_capacity: 8, ..StoreConfig::default() });
        let ids: Vec<SeriesId> = (0..16).map(|i| store.register(meta(&format!("s{i}")))).collect();
        for (i, id) in ids.iter().enumerate() {
            store.append(*id, 0, i as f64);
            store.append(*id, 60, i as f64 + 1.0);
        }
        assert_eq!(store.total_samples(), 32);
        let agg = store.global_aggregate();
        assert_eq!(agg.count, 32);
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, 16.0);
    }

    #[test]
    fn pipeline_preserves_per_series_order() {
        let store = TsdbStore::new(StoreConfig { shards: 4, channel_capacity: 4, ..StoreConfig::default() });
        let ids: Vec<SeriesId> =
            (0..32).map(|i| store.register(meta(&format!("node{i}")))).collect();
        let pipeline = store.pipeline();

        // Many producer threads, each feeding disjoint series.
        std::thread::scope(|s| {
            for chunk in ids.chunks(8) {
                let p = &pipeline;
                let chunk = chunk.to_vec();
                s.spawn(move || {
                    for id in chunk {
                        for start in (0..200i64).step_by(50) {
                            let batch: Vec<(i64, f64)> =
                                (start..start + 50).map(|i| (i * 60, i as f64)).collect();
                            p.send(id, batch);
                        }
                    }
                });
            }
        });
        assert_eq!(pipeline.close(), 0);

        assert_eq!(store.total_samples(), 32 * 200);
        for id in ids {
            let decoded = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
            assert_eq!(decoded.len(), 200);
            for (i, &(t, v)) in decoded.iter().enumerate() {
                assert_eq!(t, i as i64 * 60);
                assert_eq!(v, i as f64);
            }
        }
    }

    #[test]
    fn try_append_batch_rejects_without_partial_writes() {
        let store = TsdbStore::default();
        let id = store.register(meta("a"));
        assert_eq!(
            store.try_append_batch(SeriesId(99), &[(0, 1.0)]),
            Err(IngestError::UnknownSeries(SeriesId(99)))
        );
        store.append_batch(id, &[(0, 1.0), (60, 2.0)]);
        // Batch with an internal inversion: refused whole, nothing lands.
        let err = store.try_append_batch(id, &[(120, 3.0), (90, 4.0)]);
        assert_eq!(err, Err(IngestError::OutOfOrder { series: id, ts: 90, last: 120 }));
        // Batch that fails to advance past the stored tail.
        let err = store.try_append_batch(id, &[(60, 5.0)]);
        assert_eq!(err, Err(IngestError::OutOfOrder { series: id, ts: 60, last: 60 }));
        assert_eq!(store.total_samples(), 2);
        let decoded = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        assert_eq!(decoded, vec![(0, 1.0), (60, 2.0)]);
    }

    #[test]
    fn append_tick_matches_per_series_appends() {
        let a = TsdbStore::new(StoreConfig { shards: 4, ..StoreConfig::default() });
        let b = TsdbStore::new(StoreConfig { shards: 4, ..StoreConfig::default() });
        let ids_a: Vec<SeriesId> = (0..37).map(|i| a.register(meta(&format!("n{i}")))).collect();
        let ids_b: Vec<SeriesId> = (0..37).map(|i| b.register(meta(&format!("n{i}")))).collect();
        for tick in 0..10i64 {
            let ts = tick * 60;
            let batch: Vec<(SeriesId, f64)> =
                ids_a.iter().enumerate().map(|(i, &id)| (id, (i as f64) + tick as f64)).collect();
            assert_eq!(a.append_tick(ts, &batch), 0);
            for (i, &id) in ids_b.iter().enumerate() {
                b.append(id, ts, (i as f64) + tick as f64);
            }
        }
        assert_eq!(a.total_samples(), b.total_samples());
        for (&ia, &ib) in ids_a.iter().zip(&ids_b) {
            let da = a.with_series(ia, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
            let db = b.with_series(ib, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
            assert_eq!(da, db);
        }
    }

    #[test]
    fn append_tick_counts_per_sample_rejections() {
        let store = TsdbStore::new(StoreConfig { shards: 2, ..StoreConfig::default() });
        let a = store.register(meta("a"));
        let b = store.register(meta("b"));
        assert_eq!(store.append_tick(60, &[(a, 1.0), (b, 2.0)]), 0);
        // Stale tick for `a`, unknown series, good sample for `b`: the two
        // bad samples are counted, the good one still lands.
        let rejected = store.append_tick(60, &[(a, 9.0), (SeriesId(99), 9.0)]);
        assert_eq!(rejected, 2);
        assert_eq!(store.append_tick(120, &[(a, 3.0), (b, 4.0)]), 0);
        assert_eq!(
            store.with_series(a, |s| s.scan(i64::MIN, i64::MAX)).unwrap(),
            vec![(60, 1.0), (120, 3.0)]
        );
        assert_eq!(
            store.with_series(b, |s| s.scan(i64::MIN, i64::MAX)).unwrap(),
            vec![(60, 2.0), (120, 4.0)]
        );
    }

    #[test]
    fn append_batch_multi_preserves_per_series_order() {
        let store = TsdbStore::new(StoreConfig { shards: 3, ..StoreConfig::default() });
        let ids: Vec<SeriesId> = (0..9).map(|i| store.register(meta(&format!("m{i}")))).collect();
        // Interleave series arbitrarily; per-series timestamps ascend.
        let mut flat = Vec::new();
        for t in 0..20i64 {
            for (i, &id) in ids.iter().enumerate() {
                flat.push((id, t * 30, (i * 1000) as f64 + t as f64));
            }
        }
        assert_eq!(store.append_batch_multi(&flat), 0);
        assert_eq!(store.total_samples(), 9 * 20);
        for (i, &id) in ids.iter().enumerate() {
            let decoded = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
            assert_eq!(decoded.len(), 20);
            for (t, &(ts, v)) in decoded.iter().enumerate() {
                assert_eq!(ts, t as i64 * 30);
                assert_eq!(v, (i * 1000) as f64 + t as f64);
            }
        }
    }

    #[test]
    fn published_view_serves_fresh_and_retires_on_mutation() {
        let store = TsdbStore::default();
        let id = store.register(meta("facility"));
        for i in 0..100i64 {
            store.append(id, i * 60, i as f64);
        }
        let g1 = store.generation();
        let view = store.publish_view();
        assert_eq!(view.generation(), g1);
        assert_eq!(view.series_count(), 1);
        // Fresh view: the read helper and the lock path agree exactly.
        let via_view = store.with_series_read(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        let via_lock = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        assert_eq!(via_view, via_lock);
        assert_eq!(store.with_series_read(SeriesId(99), |_| ()), None);
        // Any mutation retires the view…
        store.append(id, 100 * 60, 1.0);
        assert!(store.generation() > g1, "append must bump the generation");
        // …and the read helper falls back to the live store, never stale.
        assert_eq!(store.with_series_read(id, |s| s.len()), Some(101));
        // Holders of the retired view still see the old world, unchanged.
        assert_eq!(view.get(id).unwrap().len(), 100);
    }

    #[test]
    fn republish_reuses_unchanged_series() {
        let store = TsdbStore::default();
        let a = store.register(meta("a"));
        let b = store.register(meta("b"));
        store.append(a, 0, 1.0);
        store.append(b, 0, 2.0);
        let v1 = store.publish_view();
        store.append(a, 60, 3.0);
        let v2 = store.publish_view();
        assert!(
            Arc::ptr_eq(v1.get(b).unwrap(), v2.get(b).unwrap()),
            "untouched series must be re-shared, not re-cloned"
        );
        assert!(
            !Arc::ptr_eq(v1.get(a).unwrap(), v2.get(a).unwrap()),
            "mutated series must be freshly frozen"
        );
        assert_eq!(v2.get(a).unwrap().len(), 2);
    }

    #[test]
    fn every_mutating_path_bumps_the_generation() {
        let store = TsdbStore::default();
        let g0 = store.generation();
        let a = store.register(meta("a"));
        assert!(store.generation() > g0, "register");

        let g = store.generation();
        store.append(a, 0, 1.0);
        assert!(store.generation() > g, "append");

        let g = store.generation();
        store.append_batch(a, &[(60, 2.0), (120, 3.0)]);
        assert!(store.generation() > g, "append_batch");

        let g = store.generation();
        assert_eq!(store.append_tick(180, &[(a, 4.0)]), 0);
        assert!(store.generation() > g, "append_tick");

        // A fully rejected tick mutates nothing and must not invalidate.
        let g = store.generation();
        assert_eq!(store.append_tick(180, &[(a, 9.0)]), 1);
        assert_eq!(store.generation(), g, "rejected tick");

        let g = store.generation();
        store.quarantine(a, 200, f64::NAN, crate::quality::QuarantineReason::OutOfRange);
        assert!(store.generation() > g, "quarantine");

        // Quarantine against an unknown id is a no-op, so no bump.
        let g = store.generation();
        store.quarantine(SeriesId(99), 200, 0.0, crate::quality::QuarantineReason::OutOfRange);
        assert_eq!(store.generation(), g, "unknown-id quarantine");

        // Compaction with nothing to rewrite leaves the epoch alone…
        let g = store.generation();
        let stats = store.compact();
        assert_eq!(stats.chunks_compacted, 0);
        assert_eq!(store.generation(), g, "no-op compaction");

        // …and a real rewrite bumps it (and refreshes a published view).
        for i in 0..(2 * crate::series::CHUNK_SAMPLES as i64 + 10) {
            store.append(a, 300 + i, i as f64);
        }
        store.publish_view();
        let g = store.generation();
        let stats = store.compact();
        assert!(stats.chunks_compacted > 0);
        assert!(store.generation() > g, "compaction");
        assert_eq!(
            store.read_view().generation(),
            store.generation(),
            "compaction must republish a serving store's view"
        );
    }

    #[test]
    fn poisoned_batch_does_not_take_down_its_shard() {
        let store = TsdbStore::new(StoreConfig { shards: 2, channel_capacity: 4, ..StoreConfig::default() });
        let good = store.register(meta("good")); // id 0 → shard 0
        let pipeline = store.pipeline();
        // Unknown id routed to shard 0 — previously this panicked the
        // writer and every later send to shard 0 panicked too.
        pipeline.send(SeriesId(2), vec![(0, 1.0)]);
        pipeline.send(good, vec![(0, 10.0), (60, 11.0)]);
        // Out-of-order poison for the same shard, then more good data.
        pipeline.send(good, vec![(50, 12.0)]);
        pipeline.send(good, vec![(120, 13.0)]);
        assert!(pipeline.rejected_batches() <= 2); // writer may still be draining
        let rejected = pipeline.close();
        assert_eq!(rejected, 2, "unknown-series and out-of-order batches are counted");
        let decoded = store.with_series(good, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        assert_eq!(decoded, vec![(0, 10.0), (60, 11.0), (120, 13.0)]);
    }
}
