//! Bounded LRU cache of decoded chunks.
//!
//! Gorilla decode is the dominant cost of a raw-plan query, and sealed
//! chunks are **immutable**: a series only ever appends — sealing a new
//! chunk adds a new index, it never rewrites an old one — so a decoded
//! chunk keyed by `(series id, chunk index)` can be cached forever without
//! an invalidation protocol. The only mutable storage is the active
//! (unsealed) chunk, which is never cached.
//!
//! The cache is sharded: keys hash across independent mutexes so parallel
//! fan-out workers rarely contend, and decode itself always happens
//! *outside* the lock (two workers may race to decode the same chunk; the
//! loser's insert is a no-op — wasted work, never wrong answers).
//! Eviction is least-recently-used per shard, tracked with a monotonic
//! access stamp.

use crate::chunk::Chunk;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A decoded chunk shared between the cache and its readers.
pub type DecodedChunk = Arc<Vec<(i64, f64)>>;

/// Internal lock shards. Power of two so the hash mix distributes evenly.
const CACHE_SHARDS: usize = 8;

#[derive(Debug, Default)]
struct CacheShard {
    map: HashMap<(u64, u32), Entry>,
    tick: u64,
}

#[derive(Debug)]
struct Entry {
    samples: DecodedChunk,
    stamp: u64,
}

impl CacheShard {
    fn touch(&mut self, key: (u64, u32)) -> Option<DecodedChunk> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.stamp = tick;
            Arc::clone(&e.samples)
        })
    }

    fn insert(&mut self, key: (u64, u32), samples: DecodedChunk, capacity: usize) {
        self.tick += 1;
        let tick = self.tick;
        self.map.entry(key).or_insert(Entry { samples, stamp: tick });
        while self.map.len() > capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k)
                .expect("over-capacity shard is non-empty");
            self.map.remove(&oldest);
        }
    }
}

/// Bounded LRU cache of decoded chunks, keyed by `(series id, chunk
/// index)`. Capacity is counted in chunks (a full chunk decodes to
/// `CHUNK_SAMPLES` `(i64, f64)` pairs ≈ 8 KiB). A capacity of zero
/// disables caching entirely: every lookup decodes.
#[derive(Debug)]
pub struct ChunkCache {
    shards: Vec<Mutex<CacheShard>>,
    per_shard_capacity: usize,
}

impl ChunkCache {
    /// A cache holding at most `capacity` decoded chunks (rounded up to a
    /// multiple of the internal shard count; 0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ChunkCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(CacheShard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS),
        }
    }

    /// Maximum chunks held (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * CACHE_SHARDS
    }

    /// Decoded chunks currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached chunk (counters in the query layer are separate).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }

    fn shard_of(&self, key: (u64, u32)) -> usize {
        // Fibonacci mix so dense series ids spread across shards.
        let h = (key.0 ^ u64::from(key.1).rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 56) as usize % CACHE_SHARDS
    }

    /// Fetch the decoded samples of `chunk` (which must be the sealed chunk
    /// at `index` within series `series`), decoding on a miss. Returns the
    /// samples and whether this was a cache hit. Decode runs outside the
    /// shard lock.
    pub fn get_or_decode(&self, series: u64, index: u32, chunk: &Chunk) -> (DecodedChunk, bool) {
        if self.per_shard_capacity == 0 {
            return (Arc::new(chunk.decode()), false);
        }
        let key = (series, index);
        let shard = &self.shards[self.shard_of(key)];
        if let Some(samples) = shard.lock().touch(key) {
            return (samples, true);
        }
        let samples: DecodedChunk = Arc::new(chunk.decode());
        shard.lock().insert(key, Arc::clone(&samples), self.per_shard_capacity);
        (samples, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkBuilder;

    fn chunk_of(n: u32, offset: f64) -> Chunk {
        let mut b = ChunkBuilder::new();
        for i in 0..n {
            b.push(i64::from(i) * 60, f64::from(i) + offset);
        }
        b.seal()
    }

    #[test]
    fn hit_after_miss_returns_same_samples() {
        let cache = ChunkCache::new(16);
        let c = chunk_of(100, 0.5);
        let (first, hit) = cache.get_or_decode(7, 0, &c);
        assert!(!hit);
        let (second, hit) = cache.get_or_decode(7, 0, &c);
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.len(), 100);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = ChunkCache::new(64);
        let a = chunk_of(10, 0.0);
        let b = chunk_of(10, 1000.0);
        let (da, _) = cache.get_or_decode(1, 0, &a);
        let (db, _) = cache.get_or_decode(2, 0, &b);
        assert_eq!(da[0].1, 0.0);
        assert_eq!(db[0].1, 1000.0);
        // Same series, different chunk index is a different entry too.
        let (dc, hit) = cache.get_or_decode(1, 1, &b);
        assert!(!hit);
        assert_eq!(dc[0].1, 1000.0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn lru_evicts_oldest_within_capacity() {
        let cache = ChunkCache::new(8); // 1 per internal shard
        let c = chunk_of(4, 0.0);
        // Hammer one shard by reusing one series id with many indexes; the
        // shard holds one entry, so only the most recent survives.
        for idx in 0..32u32 {
            cache.get_or_decode(3, idx, &c);
        }
        assert!(cache.len() <= cache.capacity());
        let before = cache.len();
        cache.clear();
        assert!(cache.is_empty());
        assert!(before > 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ChunkCache::new(0);
        let c = chunk_of(4, 0.0);
        let (_, hit) = cache.get_or_decode(1, 0, &c);
        assert!(!hit);
        let (_, hit) = cache.get_or_decode(1, 0, &c);
        assert!(!hit, "disabled cache never hits");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn concurrent_readers_agree() {
        let cache = std::sync::Arc::new(ChunkCache::new(32));
        let c = chunk_of(256, 10.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let (samples, _) = cache.get_or_decode(9, 3, &c);
                        assert_eq!(samples.len(), 256);
                        assert_eq!(samples[0].1, 10.0);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
    }
}
