//! Bounded LRU cache of decoded chunks.
//!
//! Gorilla decode is the dominant cost of a raw-plan query, and sealed
//! chunks are **immutable**: once sealed a payload never changes, and
//! every sealed payload carries a process-unique uid minted at
//! construction ([`Chunk::uid`]). The cache keys on that uid, so even a
//! compaction pass that *replaces* chunks needs no invalidation
//! protocol — the replacement chunk has a fresh uid and the orphaned
//! entries age out of the LRU. The only mutable storage is the active
//! (unsealed) chunk, which is never cached.
//!
//! Decoded chunks are held in columnar form ([`ColumnBlock`]): flat
//! timestamp and value vectors that aggregation kernels scan as tight
//! loops with binary-searched bounds.
//!
//! The cache is sharded: keys hash across independent mutexes so parallel
//! fan-out workers rarely contend, and decode itself always happens
//! *outside* the lock. Two workers may race to decode the same chunk; the
//! loser's insert keeps the winner's block but still refreshes its LRU
//! stamp — a racing duplicate insert is proof the entry is hot, and an
//! unrefreshed stamp would let the hot chunk be evicted as "oldest".
//! Eviction is least-recently-used per shard, tracked with a monotonic
//! access stamp.

use crate::chunk::{Chunk, ColumnBlock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A decoded chunk in columnar form, shared between the cache and its
/// readers.
pub type DecodedChunk = Arc<ColumnBlock>;

/// Internal lock shards. Power of two so the hash mix distributes evenly.
const CACHE_SHARDS: usize = 8;

#[derive(Debug, Default)]
struct CacheShard {
    map: HashMap<u64, Entry>,
    tick: u64,
}

#[derive(Debug)]
struct Entry {
    block: DecodedChunk,
    stamp: u64,
}

impl CacheShard {
    fn touch(&mut self, key: u64) -> Option<DecodedChunk> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.stamp = tick;
            Arc::clone(&e.block)
        })
    }

    fn insert(&mut self, key: u64, block: DecodedChunk, capacity: usize) {
        self.tick += 1;
        let tick = self.tick;
        // A duplicate insert (decode race lost) keeps the winner's block
        // but must still refresh the stamp: the entry was just accessed,
        // and leaving it stale gets hot chunks evicted as "oldest".
        self.map
            .entry(key)
            .and_modify(|e| e.stamp = tick)
            .or_insert(Entry { block, stamp: tick });
        while self.map.len() > capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k)
                .expect("over-capacity shard is non-empty");
            self.map.remove(&oldest);
        }
    }
}

/// Bounded LRU cache of decoded chunks, keyed by chunk uid. Capacity is
/// counted in chunks (a full chunk decodes to `CHUNK_SAMPLES` timestamp +
/// value pairs ≈ 8 KiB of columns). A capacity of zero disables caching
/// entirely: every lookup decodes.
#[derive(Debug)]
pub struct ChunkCache {
    shards: Vec<Mutex<CacheShard>>,
    /// Per-shard bounds summing exactly to the requested capacity (the
    /// remainder spreads over the first shards), so `capacity()` reports
    /// the number the caller asked for, not a rounded-up multiple.
    shard_capacity: Vec<usize>,
    capacity: usize,
}

impl ChunkCache {
    /// A cache holding at most `capacity` decoded chunks (0 disables
    /// caching).
    pub fn new(capacity: usize) -> Self {
        let base = capacity / CACHE_SHARDS;
        let extra = capacity % CACHE_SHARDS;
        ChunkCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(CacheShard::default())).collect(),
            shard_capacity: (0..CACHE_SHARDS).map(|i| base + usize::from(i < extra)).collect(),
            capacity,
        }
    }

    /// Maximum chunks held (0 when disabled) — exactly the capacity
    /// requested at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Decoded chunks currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached chunk (counters in the query layer are separate).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }

    fn shard_of(&self, key: u64) -> usize {
        // Fibonacci mix so sequentially-minted uids spread across shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 56) as usize % CACHE_SHARDS
    }

    /// Fetch the decoded columns of `chunk`, decoding on a miss. Returns
    /// the block and whether this was a cache hit. Decode runs outside the
    /// shard lock.
    pub fn get_or_decode(&self, chunk: &Chunk) -> (DecodedChunk, bool) {
        let key = chunk.uid();
        let shard_idx = self.shard_of(key);
        if self.shard_capacity[shard_idx] == 0 {
            return (Arc::new(chunk.decode_columns()), false);
        }
        let shard = &self.shards[shard_idx];
        if let Some(block) = shard.lock().touch(key) {
            return (block, true);
        }
        let block: DecodedChunk = Arc::new(chunk.decode_columns());
        shard.lock().insert(key, Arc::clone(&block), self.shard_capacity[shard_idx]);
        (block, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkBuilder;

    fn chunk_of(n: u32, offset: f64) -> Chunk {
        let mut b = ChunkBuilder::new();
        for i in 0..n {
            b.push(i64::from(i) * 60, f64::from(i) + offset);
        }
        b.seal()
    }

    #[test]
    fn hit_after_miss_returns_same_samples() {
        let cache = ChunkCache::new(16);
        let c = chunk_of(100, 0.5);
        let (first, hit) = cache.get_or_decode(&c);
        assert!(!hit);
        let (second, hit) = cache.get_or_decode(&c);
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.len(), 100);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_chunks_do_not_collide() {
        let cache = ChunkCache::new(64);
        let a = chunk_of(10, 0.0);
        let b = chunk_of(10, 1000.0);
        let (da, _) = cache.get_or_decode(&a);
        let (db, _) = cache.get_or_decode(&b);
        assert_eq!(da.values()[0], 0.0);
        assert_eq!(db.values()[0], 1000.0);
        // A clone shares the uid, so it is the *same* entry.
        let (dc, hit) = cache.get_or_decode(&b.clone());
        assert!(hit);
        assert_eq!(dc.values()[0], 1000.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_oldest_within_capacity() {
        let cache = ChunkCache::new(8); // at most 1 per internal shard
        let chunks: Vec<Chunk> = (0..32).map(|i| chunk_of(4, f64::from(i))).collect();
        for c in &chunks {
            cache.get_or_decode(c);
        }
        assert!(cache.len() <= cache.capacity());
        let before = cache.len();
        cache.clear();
        assert!(cache.is_empty());
        assert!(before > 0);
    }

    #[test]
    fn capacity_reports_exactly_what_was_requested() {
        // Regression: div_ceil rounding made new(1) report (and hold)
        // CACHE_SHARDS chunks — an 8x memory-bound overshoot for small
        // caches.
        for requested in [0usize, 1, 3, 7, 8, 9, 100] {
            let cache = ChunkCache::new(requested);
            assert_eq!(cache.capacity(), requested, "requested {requested}");
        }
        // And the bound is enforced globally, not just reported: however
        // many distinct chunks stream through a capacity-1 cache, at most
        // one survives.
        let cache = ChunkCache::new(1);
        let chunks: Vec<Chunk> = (0..64).map(|i| chunk_of(4, f64::from(i))).collect();
        for c in &chunks {
            cache.get_or_decode(c);
        }
        assert!(cache.len() <= 1, "capacity-1 cache holds {}", cache.len());
    }

    #[test]
    fn duplicate_insert_refreshes_lru_stamp() {
        // Regression: `or_insert` skipped the stamp refresh when a decode
        // race lost, so a chunk being hammered by many workers could
        // still look "oldest" and be evicted first. Model the race at the
        // shard level: insert A, then B, then re-insert A (the losing
        // racer), then overflow — B, not A, must be the eviction victim.
        let mut shard = CacheShard::default();
        let block = |v: f64| Arc::new(ColumnBlock::new(vec![0], vec![v]));
        shard.insert(1, block(1.0), 2);
        shard.insert(2, block(2.0), 2);
        shard.insert(1, block(1.0), 2); // duplicate: must refresh key 1
        shard.insert(3, block(3.0), 2); // overflow: evicts the true LRU
        assert!(shard.map.contains_key(&1), "hot entry evicted after duplicate insert");
        assert!(!shard.map.contains_key(&2), "stale entry survived eviction");
        assert!(shard.map.contains_key(&3));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ChunkCache::new(0);
        let c = chunk_of(4, 0.0);
        let (_, hit) = cache.get_or_decode(&c);
        assert!(!hit);
        let (_, hit) = cache.get_or_decode(&c);
        assert!(!hit, "disabled cache never hits");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn concurrent_readers_agree() {
        let cache = std::sync::Arc::new(ChunkCache::new(32));
        let c = chunk_of(256, 10.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let (block, _) = cache.get_or_decode(&c);
                        assert_eq!(block.len(), 256);
                        assert_eq!(block.values()[0], 10.0);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
    }
}
