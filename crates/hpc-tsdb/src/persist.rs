//! Versioned, checksummed snapshot persistence for [`TsdbStore`].
//!
//! The byte-level specification lives in `docs/TSDB_FORMAT.md`; this module
//! is the reference implementation. The shape in one paragraph: a snapshot
//! is an 8-byte magic followed by a sequence of *blocks*, each framed as
//! `[tag u8][len u32][payload][crc32 u32]` with the CRC covering tag, length
//! and payload. The first block is a header (format version, series count),
//! then one block per series (metadata, sealed Gorilla chunks **verbatim**
//! with their zone maps when present, rollup state, and the active tail as
//! raw samples), and finally a footer
//! block whose presence proves the file was written to completion. Any
//! truncation or bit error is caught by a frame CRC or the missing footer
//! and surfaces as a typed [`PersistError`] — a snapshot is accepted whole
//! or rejected whole, never partially applied.
//!
//! ```
//! use hpc_tsdb::{SeriesMeta, StoreConfig, TsdbStore};
//!
//! let store = TsdbStore::default();
//! let id = store.register(SeriesMeta {
//!     name: "facility".into(), unit: "kW".into(), interval_hint: 60,
//! });
//! for i in 0..1000i64 {
//!     store.append(id, i * 60, 3200.0 + (i % 7) as f64);
//! }
//!
//! let path = std::env::temp_dir().join(format!("doc-snap-{}.tsnap", std::process::id()));
//! store.snapshot_to_path(&path).unwrap();
//! let reopened = TsdbStore::open_snapshot_path(&path, StoreConfig::default()).unwrap();
//!
//! // Recovery is bit-identical: every sample round-trips exactly.
//! let rid = reopened.lookup("facility").unwrap();
//! let a = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
//! let b = reopened.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
//! assert_eq!(a, b);
//! std::fs::remove_file(&path).unwrap();
//! ```

use crate::chunk::{Chunk, Zone};
use crate::rollup::{Aggregate, Bucket, RollupLevel, HOUR, MINUTE};
use crate::series::{Series, SeriesMeta};
use crate::store::{SeriesId, StoreConfig, TsdbStore};
use bytes::Bytes;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic prefix of a snapshot file: `HTSDBSN` + format generation byte.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"HTSDBSN\x01";
/// Current snapshot format version, written in the header block.
///
/// Version history:
/// - `1` — series metadata, sealed chunks, rollups, active tail;
/// - `2` — appends a zone-map section to every sealed chunk (zone count,
///   then per-zone time bounds and pre-computed [`Aggregate`]), so
///   compacted chunks recover with their pruning structure intact.
///   Version-1 snapshots remain readable; their chunks simply recover
///   zone-less.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Oldest snapshot format version this reader still accepts.
pub const SNAPSHOT_MIN_VERSION: u16 = 1;

/// Block tags (see `docs/TSDB_FORMAT.md`).
const TAG_HEADER: u8 = 0x01;
const TAG_SERIES: u8 = 0x02;
const TAG_FOOTER: u8 = 0xFF;

/// Why a snapshot or WAL could not be read (or written).
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The header declares a format version this reader does not speak.
    UnsupportedVersion(u16),
    /// The file ended before a complete block (or the footer) was read.
    /// `offset` is the byte position where the read fell short.
    Truncated {
        /// Byte offset at which the file fell short.
        offset: u64,
    },
    /// A block's CRC did not match its contents — a bit error or torn
    /// write inside the block starting at `offset`.
    CorruptBlock {
        /// Byte offset of the start of the corrupt block.
        offset: u64,
    },
    /// The frames checked out but the decoded structure is inconsistent
    /// (duplicate series, footer counts that disagree, bad field widths).
    Malformed(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a tsdb snapshot/WAL (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            PersistError::Truncated { offset } => {
                write!(f, "file truncated mid-block at byte {offset}")
            }
            PersistError::CorruptBlock { offset } => {
                write!(f, "CRC mismatch in block starting at byte {offset}")
            }
            PersistError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// What a completed snapshot wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Series serialised.
    pub series: u64,
    /// Raw samples represented (sealed + active).
    pub samples: u64,
    /// Total bytes written, including framing.
    pub bytes: u64,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven, built at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the checksum used by every snapshot block and
/// WAL record frame.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Little-endian payload encoding helpers.
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    // Stored as the raw bit pattern so NaN payloads survive.
    put_u64(buf, v.to_bits());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_aggregate(buf: &mut Vec<u8>, a: &Aggregate) {
    put_u64(buf, a.count);
    put_f64(buf, a.sum);
    put_f64(buf, a.min);
    put_f64(buf, a.max);
    put_f64(buf, a.mean);
    put_f64(buf, a.m2);
}

fn put_rollup(buf: &mut Vec<u8>, level: &RollupLevel) {
    put_i64(buf, level.resolution());
    put_u32(buf, level.sealed().len() as u32);
    for b in level.sealed() {
        put_i64(buf, b.start);
        put_aggregate(buf, &b.agg);
    }
    match level.open() {
        Some(b) => {
            buf.push(1);
            put_i64(buf, b.start);
            put_aggregate(buf, &b.agg);
        }
        None => buf.push(0),
    }
}

/// Sequential reader over one block's payload with typed take-ops; every
/// short read is a [`PersistError::Malformed`] (the frame CRC already
/// matched, so a short payload is a structural bug, not a torn write).
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.buf.len() - self.pos < n {
            return Err(PersistError::Malformed(format!(
                "payload too short reading {what} ({} of {n} bytes left)",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self, what: &str) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn str_(&mut self, what: &str) -> Result<String, PersistError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed(format!("{what}: invalid UTF-8")))
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn read_aggregate(c: &mut Cursor<'_>) -> Result<Aggregate, PersistError> {
    Ok(Aggregate {
        count: c.u64("agg.count")?,
        sum: c.f64("agg.sum")?,
        min: c.f64("agg.min")?,
        max: c.f64("agg.max")?,
        mean: c.f64("agg.mean")?,
        m2: c.f64("agg.m2")?,
    })
}

fn read_rollup(c: &mut Cursor<'_>, expected_resolution: i64) -> Result<RollupLevel, PersistError> {
    let resolution = c.i64("rollup.resolution")?;
    if resolution != expected_resolution {
        return Err(PersistError::Malformed(format!(
            "rollup resolution {resolution} (expected {expected_resolution})"
        )));
    }
    let sealed_n = c.u32("rollup.sealed_count")? as usize;
    let mut sealed = Vec::with_capacity(sealed_n.min(1 << 20));
    for _ in 0..sealed_n {
        let start = c.i64("bucket.start")?;
        let agg = read_aggregate(c)?;
        sealed.push(Bucket { start, agg });
    }
    let open = match c.u8("rollup.open_flag")? {
        0 => None,
        1 => {
            let start = c.i64("bucket.start")?;
            let agg = read_aggregate(c)?;
            Some(Bucket { start, agg })
        }
        f => return Err(PersistError::Malformed(format!("rollup open flag {f}"))),
    };
    Ok(RollupLevel::from_parts(resolution, sealed, open))
}

// ---------------------------------------------------------------------------
// Block framing.
// ---------------------------------------------------------------------------

fn write_block(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<u64, PersistError> {
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.push(tag);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(&frame);
    w.write_all(&frame)?;
    w.write_all(&crc.to_le_bytes())?;
    Ok(frame.len() as u64 + 4)
}

/// Read one `[tag][len][payload][crc]` block. `offset` is advanced past the
/// block; on error it still points at the block start for diagnostics.
fn read_block(r: &mut impl Read, offset: &mut u64) -> Result<(u8, Vec<u8>), PersistError> {
    let start = *offset;
    let mut head = [0u8; 5];
    read_exact_at(r, &mut head, start)?;
    let tag = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes")) as u64;
    // Never trust `len` with an up-front allocation: a flipped bit in the
    // length field must not balloon memory. `take` stops at EOF, and a
    // short read is reported as truncation at the block start.
    let mut payload = Vec::new();
    let got = r.take(len).read_to_end(&mut payload)?;
    if (got as u64) < len {
        return Err(PersistError::Truncated { offset: start });
    }
    let mut crc_bytes = [0u8; 4];
    read_exact_at(r, &mut crc_bytes, start)?;
    let stored = u32::from_le_bytes(crc_bytes);
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&head);
    frame.extend_from_slice(&payload);
    if crc32(&frame) != stored {
        return Err(PersistError::CorruptBlock { offset: start });
    }
    *offset = start + 5 + len + 4;
    Ok((tag, payload))
}

fn read_exact_at(r: &mut impl Read, buf: &mut [u8], block_start: u64) -> Result<(), PersistError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(PersistError::Truncated { offset: block_start })
        }
        Err(e) => Err(e.into()),
    }
}

// ---------------------------------------------------------------------------
// Snapshot write.
// ---------------------------------------------------------------------------

fn series_payload(id: SeriesId, series: &Series, version: u16) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + series.size_bytes());
    put_u64(&mut p, id.0);
    put_str(&mut p, &series.meta().name);
    put_str(&mut p, &series.meta().unit);
    put_i64(&mut p, series.meta().interval_hint);
    put_aggregate(&mut p, series.total_aggregate());
    put_u32(&mut p, series.chunks().len() as u32);
    for chunk in series.chunks() {
        put_u32(&mut p, chunk.len());
        put_i64(&mut p, chunk.first_ts());
        put_i64(&mut p, chunk.last_ts());
        put_u64(&mut p, chunk.len_bits());
        put_u32(&mut p, chunk.data().len() as u32);
        p.extend_from_slice(chunk.data());
        put_aggregate(&mut p, chunk.aggregate());
        if version >= 2 {
            let zones = chunk.zones().unwrap_or(&[]);
            put_u32(&mut p, zones.len() as u32);
            for z in zones {
                put_i64(&mut p, z.first_ts);
                put_i64(&mut p, z.last_ts);
                put_aggregate(&mut p, &z.agg);
            }
        }
    }
    put_rollup(&mut p, series.minutes());
    put_rollup(&mut p, series.hours());
    let tail = series.active_tail();
    put_u32(&mut p, tail.len() as u32);
    for (ts, v) in tail {
        put_i64(&mut p, ts);
        put_f64(&mut p, v);
    }
    p
}

fn read_series_payload(payload: &[u8], version: u16) -> Result<(SeriesId, Series), PersistError> {
    let mut c = Cursor::new(payload);
    let id = SeriesId(c.u64("series.id")?);
    let name = c.str_("series.name")?;
    let unit = c.str_("series.unit")?;
    let interval_hint = c.i64("series.interval_hint")?;
    let total = read_aggregate(&mut c)?;
    let n_chunks = c.u32("series.chunk_count")? as usize;
    let mut sealed = Vec::with_capacity(n_chunks.min(1 << 20));
    for _ in 0..n_chunks {
        let count = c.u32("chunk.count")?;
        let first_ts = c.i64("chunk.first_ts")?;
        let last_ts = c.i64("chunk.last_ts")?;
        let len_bits = c.u64("chunk.len_bits")?;
        let data_len = c.u32("chunk.data_len")? as usize;
        let data = c.take(data_len, "chunk.data")?;
        if (data.len() as u64) * 8 < len_bits {
            return Err(PersistError::Malformed(format!(
                "chunk of {data_len} bytes cannot hold {len_bits} bits"
            )));
        }
        let agg = read_aggregate(&mut c)?;
        let mut chunk =
            Chunk::from_parts(Bytes::from(data), len_bits, count, first_ts, last_ts, agg);
        if version >= 2 {
            let n_zones = c.u32("chunk.zone_count")? as usize;
            if n_zones > 0 {
                let mut zones = Vec::with_capacity(n_zones.min(1 << 20));
                let mut covered = 0u64;
                let mut prev_last = i64::MIN;
                for _ in 0..n_zones {
                    let z_first = c.i64("zone.first_ts")?;
                    let z_last = c.i64("zone.last_ts")?;
                    let z_agg = read_aggregate(&mut c)?;
                    if z_first > z_last || z_first < first_ts || z_last > last_ts {
                        return Err(PersistError::Malformed(format!(
                            "zone [{z_first}, {z_last}] outside chunk [{first_ts}, {last_ts}]"
                        )));
                    }
                    if z_first <= prev_last {
                        return Err(PersistError::Malformed(format!(
                            "zones overlap or regress at ts {z_first}"
                        )));
                    }
                    prev_last = z_last;
                    covered += z_agg.count;
                    zones.push(Zone { first_ts: z_first, last_ts: z_last, agg: z_agg });
                }
                if covered != u64::from(count) {
                    return Err(PersistError::Malformed(format!(
                        "zone sample counts sum to {covered}, chunk holds {count}"
                    )));
                }
                chunk = chunk.with_zones(zones);
            }
        }
        sealed.push(chunk);
    }
    let minutes = read_rollup(&mut c, MINUTE)?;
    let hours = read_rollup(&mut c, HOUR)?;
    let tail_n = c.u32("series.tail_count")? as usize;
    let mut tail = Vec::with_capacity(tail_n.min(1 << 20));
    let mut last: Option<i64> = None;
    for _ in 0..tail_n {
        let ts = c.i64("tail.ts")?;
        let v = c.f64("tail.value")?;
        if last.is_some_and(|l| ts <= l) {
            return Err(PersistError::Malformed(format!(
                "active tail not strictly increasing at ts {ts}"
            )));
        }
        last = Some(ts);
        tail.push((ts, v));
    }
    if !c.done() {
        return Err(PersistError::Malformed("trailing bytes in series block".into()));
    }
    let meta = SeriesMeta { name, unit, interval_hint };
    Ok((id, Series::from_parts(meta, sealed, &tail, minutes, hours, total)))
}

impl TsdbStore {
    /// Serialise the whole store to `w` in the checksummed snapshot format
    /// (`docs/TSDB_FORMAT.md`).
    ///
    /// Each series is serialised under its shard's read lock, so the
    /// per-series image is always internally consistent; for a globally
    /// consistent point-in-time image, quiesce writers first (the campaign
    /// checkpoints between simulation runs, the pipeline after `close()`).
    pub fn snapshot_to(&self, w: &mut impl Write) -> Result<SnapshotStats, PersistError> {
        self.snapshot_to_versioned(w, SNAPSHOT_VERSION)
    }

    /// [`Self::snapshot_to`] at an explicit (older) format version — kept
    /// for compatibility tests; version-1 images drop zone maps.
    pub(crate) fn snapshot_to_versioned(
        &self,
        w: &mut impl Write,
        version: u16,
    ) -> Result<SnapshotStats, PersistError> {
        assert!(
            (SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version),
            "unwritable snapshot version {version}"
        );
        let entries = self.series_entries();
        let mut stats = SnapshotStats { series: entries.len() as u64, ..Default::default() };
        w.write_all(&SNAPSHOT_MAGIC)?;
        stats.bytes += SNAPSHOT_MAGIC.len() as u64;

        let mut header = Vec::with_capacity(32);
        header.extend_from_slice(&version.to_le_bytes());
        put_u64(&mut header, entries.len() as u64);
        put_u64(&mut header, self.next_series_id());
        stats.bytes += write_block(w, TAG_HEADER, &header)?;

        for (id, _) in &entries {
            let payload = self
                .with_series(*id, |s| {
                    stats.samples += s.len();
                    series_payload(*id, s, version)
                })
                .ok_or_else(|| {
                    PersistError::Malformed(format!("registered series {id:?} missing"))
                })?;
            stats.bytes += write_block(w, TAG_SERIES, &payload)?;
        }

        let mut footer = Vec::with_capacity(16);
        put_u64(&mut footer, entries.len() as u64);
        put_u64(&mut footer, stats.samples);
        stats.bytes += write_block(w, TAG_FOOTER, &footer)?;
        w.flush()?;
        Ok(stats)
    }

    /// Snapshot to `path` atomically: the image is written to a sibling
    /// temporary file, fsynced, then renamed into place — a crash mid-write
    /// never leaves a half-written file under the final name.
    pub fn snapshot_to_path(&self, path: &Path) -> Result<SnapshotStats, PersistError> {
        let tmp = path.with_extension("tmp");
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        let stats = self.snapshot_to(&mut w)?;
        let file = w.into_inner().map_err(|e| PersistError::Io(e.into_error()))?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(stats)
    }

    /// Rebuild a store from a snapshot stream. Accepts the image whole or
    /// returns a typed error — a truncated or bit-flipped snapshot is never
    /// partially applied.
    pub fn open_snapshot(r: &mut impl Read, config: StoreConfig) -> Result<Self, PersistError> {
        let mut offset = 0u64;
        let mut magic = [0u8; 8];
        read_exact_at(r, &mut magic, 0)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(PersistError::BadMagic);
        }
        offset += 8;

        let (tag, header) = read_block(r, &mut offset)?;
        if tag != TAG_HEADER {
            return Err(PersistError::Malformed(format!("first block tag {tag:#x}")));
        }
        let mut c = Cursor::new(&header);
        let version = u16::from_le_bytes(c.take(2, "header.version")?.try_into().expect("2 bytes"));
        if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let declared_series = c.u64("header.series_count")?;
        let next_id = c.u64("header.next_id")?;

        let store = TsdbStore::new(config);
        let mut seen_series = 0u64;
        let mut seen_samples = 0u64;
        loop {
            let (tag, payload) = read_block(r, &mut offset)?;
            match tag {
                TAG_SERIES => {
                    let (id, series) = read_series_payload(&payload, version)?;
                    seen_samples += series.len();
                    let name = series.meta().name.clone();
                    if !store.install_recovered(id, series) {
                        return Err(PersistError::Malformed(format!(
                            "duplicate series {name:?} / id {id:?}"
                        )));
                    }
                    seen_series += 1;
                }
                TAG_FOOTER => {
                    let mut c = Cursor::new(&payload);
                    let footer_series = c.u64("footer.series_count")?;
                    let footer_samples = c.u64("footer.sample_count")?;
                    if footer_series != seen_series || footer_series != declared_series {
                        return Err(PersistError::Malformed(format!(
                            "footer series count {footer_series} vs {seen_series} read / {declared_series} declared"
                        )));
                    }
                    if footer_samples != seen_samples {
                        return Err(PersistError::Malformed(format!(
                            "footer sample count {footer_samples} vs {seen_samples} read"
                        )));
                    }
                    break;
                }
                t => return Err(PersistError::Malformed(format!("unexpected block tag {t:#x}"))),
            }
        }
        // The footer must be the last thing in the stream.
        let mut one = [0u8; 1];
        if r.read(&mut one)? != 0 {
            return Err(PersistError::Malformed("trailing data after footer".into()));
        }
        store.bump_next_id(next_id);
        Ok(store)
    }

    /// [`Self::open_snapshot`] over a file path.
    pub fn open_snapshot_path(path: &Path, config: StoreConfig) -> Result<Self, PersistError> {
        let mut r = BufReader::new(File::open(path)?);
        Self::open_snapshot(&mut r, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str) -> SeriesMeta {
        SeriesMeta { name: name.into(), unit: "kW".into(), interval_hint: 60 }
    }

    fn sample_store() -> TsdbStore {
        let store = TsdbStore::default();
        let a = store.register(meta("facility"));
        let b = store.register(meta("cabinet.0"));
        // Spans sealed chunks on `a`, leaves a ragged tail on both.
        for i in 0..1300i64 {
            store.append(a, i * 60, 3000.0 + (i % 13) as f64 * 0.5);
        }
        for i in 0..70i64 {
            store.append(b, i * 900, 120.0 + (i % 5) as f64);
        }
        store
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let store = sample_store();
        let mut buf = Vec::new();
        let stats = store.snapshot_to(&mut buf).unwrap();
        assert_eq!(stats.series, 2);
        assert_eq!(stats.samples, 1370);
        assert_eq!(stats.bytes, buf.len() as u64);

        let back = TsdbStore::open_snapshot(&mut &buf[..], StoreConfig::default()).unwrap();
        assert_eq!(back.series_count(), 2);
        assert_eq!(back.total_samples(), store.total_samples());
        for name in ["facility", "cabinet.0"] {
            let id = store.lookup(name).unwrap();
            let rid = back.lookup(name).unwrap();
            assert_eq!(id, rid, "ids survive recovery");
            let orig = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
            let rec = back.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
            assert_eq!(orig.len(), rec.len());
            for ((t0, v0), (t1, v1)) in orig.iter().zip(&rec) {
                assert_eq!(t0, t1);
                assert_eq!(v0.to_bits(), v1.to_bits());
            }
            // Rollup state survives too.
            let (m0, h0) = store
                .with_series(id, |s| (s.minutes().sealed().len(), s.hours().sealed().len()))
                .unwrap();
            let (m1, h1) = back
                .with_series(rid, |s| (s.minutes().sealed().len(), s.hours().sealed().len()))
                .unwrap();
            assert_eq!((m0, h0), (m1, h1));
        }
        // New appends continue seamlessly after the recovered tail.
        let id = back.lookup("facility").unwrap();
        back.append(id, 1300 * 60, 99.0);
        // And new registrations do not collide with recovered ids.
        let fresh = back.register(meta("node.0"));
        assert!(fresh.0 >= 2, "next id resumed past recovered ids, got {fresh:?}");
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = TsdbStore::default();
        let mut buf = Vec::new();
        store.snapshot_to(&mut buf).unwrap();
        let back = TsdbStore::open_snapshot(&mut &buf[..], StoreConfig::default()).unwrap();
        assert_eq!(back.series_count(), 0);
        assert_eq!(back.total_samples(), 0);
    }

    #[test]
    fn every_truncation_is_detected() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.snapshot_to(&mut buf).unwrap();
        // Every strict prefix must fail with a typed error (sampled stride
        // keeps the test fast; boundaries are covered explicitly).
        let mut cuts: Vec<usize> = (0..buf.len()).step_by(257).collect();
        cuts.extend([0, 1, 7, 8, 9, buf.len() - 1, buf.len() - 4, buf.len() - 5]);
        for cut in cuts {
            let res = TsdbStore::open_snapshot(&mut &buf[..cut], StoreConfig::default());
            assert!(res.is_err(), "truncation at {cut}/{} accepted", buf.len());
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.snapshot_to(&mut buf).unwrap();
        for byte in (0..buf.len()).step_by(101) {
            for bit in [0u8, 5] {
                let mut evil = buf.clone();
                evil[byte] ^= 1 << bit;
                let res = TsdbStore::open_snapshot(&mut &evil[..], StoreConfig::default());
                assert!(res.is_err(), "bit flip at byte {byte} bit {bit} accepted");
            }
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let store = TsdbStore::default();
        let mut buf = Vec::new();
        store.snapshot_to(&mut buf).unwrap();
        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            TsdbStore::open_snapshot(&mut &wrong_magic[..], StoreConfig::default()),
            Err(PersistError::BadMagic)
        ));
        // A future version byte must be refused, not mis-read. Rebuild the
        // header block with a bumped version and a fixed-up CRC.
        let mut future = buf.clone();
        future[8 + 5] = SNAPSHOT_VERSION as u8 + 1; // payload starts after magic + tag + len
        let len = u32::from_le_bytes(future[9..13].try_into().unwrap()) as usize;
        let crc = crc32(&future[8..8 + 5 + len]);
        future[8 + 5 + len..8 + 5 + len + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            TsdbStore::open_snapshot(&mut &future[..], StoreConfig::default()),
            Err(PersistError::UnsupportedVersion(v)) if v == SNAPSHOT_VERSION + 1
        ));
        // And a pre-history version 0 likewise.
        let mut ancient = buf.clone();
        ancient[8 + 5] = 0;
        let crc = crc32(&ancient[8..8 + 5 + len]);
        ancient[8 + 5 + len..8 + 5 + len + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            TsdbStore::open_snapshot(&mut &ancient[..], StoreConfig::default()),
            Err(PersistError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn zone_maps_survive_snapshot_roundtrip() {
        let store = sample_store();
        let stats = store.compact();
        assert!(stats.chunks_compacted > 0, "sample store should compact");
        let mut buf = Vec::new();
        store.snapshot_to(&mut buf).unwrap();
        let back = TsdbStore::open_snapshot(&mut &buf[..], StoreConfig::default()).unwrap();

        let id = store.lookup("facility").unwrap();
        let (orig_zones, orig_agg) = store
            .with_series(id, |s| {
                let zones: Vec<Vec<Zone>> =
                    s.chunks().iter().map(|c| c.zones().unwrap_or(&[]).to_vec()).collect();
                (zones, s.scan_aggregate(0, i64::MAX))
            })
            .unwrap();
        assert!(orig_zones.iter().any(|z| !z.is_empty()), "compaction left no zones");
        let rid = back.lookup("facility").unwrap();
        let (rec_zones, rec_agg) = back
            .with_series(rid, |s| {
                let zones: Vec<Vec<Zone>> =
                    s.chunks().iter().map(|c| c.zones().unwrap_or(&[]).to_vec()).collect();
                (zones, s.scan_aggregate(0, i64::MAX))
            })
            .unwrap();
        assert_eq!(orig_zones.len(), rec_zones.len());
        for (a, b) in orig_zones.iter().zip(&rec_zones) {
            assert_eq!(a.len(), b.len());
            for (za, zb) in a.iter().zip(b) {
                assert_eq!((za.first_ts, za.last_ts), (zb.first_ts, zb.last_ts));
                assert_eq!(za.agg.count, zb.agg.count);
                assert_eq!(za.agg.sum.to_bits(), zb.agg.sum.to_bits());
                assert_eq!(za.agg.m2.to_bits(), zb.agg.m2.to_bits());
            }
        }
        assert_eq!(orig_agg.count, rec_agg.count);
        assert_eq!(orig_agg.sum.to_bits(), rec_agg.sum.to_bits());
    }

    #[test]
    fn version_1_snapshots_stay_readable() {
        // A v1 image (written before zone maps existed) must recover: same
        // samples, zone-less chunks. The versioned writer reproduces the
        // old byte layout exactly.
        let store = sample_store();
        store.compact();
        let mut v1 = Vec::new();
        store.snapshot_to_versioned(&mut v1, 1).unwrap();
        let back = TsdbStore::open_snapshot(&mut &v1[..], StoreConfig::default()).unwrap();
        assert_eq!(back.total_samples(), store.total_samples());
        let id = store.lookup("facility").unwrap();
        let rid = back.lookup("facility").unwrap();
        let orig = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        let rec = back.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        assert_eq!(orig.len(), rec.len());
        for ((t0, v0), (t1, v1)) in orig.iter().zip(&rec) {
            assert_eq!(t0, t1);
            assert_eq!(v0.to_bits(), v1.to_bits());
        }
        let zoneless = back
            .with_series(rid, |s| s.chunks().iter().all(|c| c.zones().is_none()))
            .unwrap();
        assert!(zoneless, "v1 image cannot carry zones");
        let mut v2 = Vec::new();
        store.snapshot_to(&mut v2).unwrap();
        assert!(v2.len() > v1.len(), "zone sections add bytes");
    }

    #[test]
    fn snapshot_to_path_is_atomic_and_reopens() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tsdb-snap-test-{}.tsnap", std::process::id()));
        let store = sample_store();
        let stats = store.snapshot_to_path(&path).unwrap();
        assert!(stats.bytes > 0);
        assert!(!path.with_extension("tmp").exists(), "temp file left behind");
        let back = TsdbStore::open_snapshot_path(&path, StoreConfig::default()).unwrap();
        assert_eq!(back.total_samples(), store.total_samples());
        std::fs::remove_file(&path).unwrap();
    }
}
