//! Hierarchical downsampling: raw samples cascade into 1-minute buckets,
//! sealed 1-minute buckets cascade into 1-hour buckets.
//!
//! Every bucket carries `count / sum / min / max` plus Welford moments
//! (`mean`, `m2`), so re-aggregating buckets over a window reproduces the
//! mean and variance a raw scan would compute — means of means are never
//! taken.

/// One-minute rollup resolution in seconds.
pub const MINUTE: i64 = 60;
/// One-hour rollup resolution in seconds.
pub const HOUR: i64 = 3600;

/// Mergeable summary of a set of samples (Welford/Chan formulation, the
/// same moments `sim_core::stats::OnlineStats` carries).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Aggregate {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Running mean (numerically stable).
    pub mean: f64,
    /// Sum of squared deviations from the mean.
    pub m2: f64,
}

impl Aggregate {
    /// Summary of zero samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one sample.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another summary (Chan's pairwise update).
    pub fn merge(&mut self, other: &Aggregate) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the summarised samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }
}

/// A sealed rollup bucket: an [`Aggregate`] pinned to an aligned window
/// `[start, start + resolution)`.
#[derive(Debug, Clone, Copy)]
pub struct Bucket {
    /// Window start (aligned to the level's resolution).
    pub start: i64,
    /// Summary of the raw samples inside the window.
    pub agg: Aggregate,
}

/// One downsampling level: sealed buckets plus the bucket currently
/// filling. Buckets seal when a sample lands past their window, so levels
/// only ever append.
#[derive(Debug, Clone)]
pub struct RollupLevel {
    resolution: i64,
    sealed: Vec<Bucket>,
    open: Option<Bucket>,
}

impl RollupLevel {
    /// An empty level bucketing at `resolution` seconds.
    ///
    /// # Panics
    /// Panics if `resolution <= 0`.
    pub fn new(resolution: i64) -> Self {
        assert!(resolution > 0, "rollup resolution must be positive");
        RollupLevel { resolution, sealed: Vec::new(), open: None }
    }

    /// Bucket width in seconds.
    pub fn resolution(&self) -> i64 {
        self.resolution
    }

    /// Reassemble a level from persisted parts (sealed buckets in time
    /// order plus the optional trailing open bucket). Used by snapshot
    /// recovery after CRC verification.
    ///
    /// # Panics
    /// Panics if `resolution <= 0`.
    pub fn from_parts(resolution: i64, sealed: Vec<Bucket>, open: Option<Bucket>) -> Self {
        assert!(resolution > 0, "rollup resolution must be positive");
        RollupLevel { resolution, sealed, open }
    }

    /// Sealed (complete) buckets in time order.
    pub fn sealed(&self) -> &[Bucket] {
        &self.sealed
    }

    /// The partially filled trailing bucket, if any.
    pub fn open(&self) -> Option<&Bucket> {
        self.open.as_ref()
    }

    fn bucket_start(&self, ts: i64) -> i64 {
        ts.div_euclid(self.resolution) * self.resolution
    }

    /// Fold one raw sample in; returns the bucket sealed by this append,
    /// if crossing a boundary closed one (callers cascade it upward).
    pub fn push(&mut self, ts: i64, value: f64) -> Option<Bucket> {
        self.fold(ts, {
            let mut a = Aggregate::new();
            a.push(value);
            a
        })
    }

    /// Fold a pre-aggregated child bucket in (used when cascading a sealed
    /// finer bucket into a coarser level).
    pub fn fold(&mut self, ts: i64, agg: Aggregate) -> Option<Bucket> {
        let start = self.bucket_start(ts);
        let mut sealed = None;
        match &mut self.open {
            Some(b) if b.start == start => b.agg.merge(&agg),
            open => {
                if let Some(b) = open.take() {
                    assert!(b.start < start, "rollup fold went backwards");
                    self.sealed.push(b);
                    sealed = Some(b);
                }
                *open = Some(Bucket { start, agg });
            }
        }
        sealed
    }

    /// Buckets (sealed and open) intersecting `[from, to)`, in time order.
    pub fn buckets_in(&self, from: i64, to: i64) -> impl Iterator<Item = &Bucket> {
        self.sealed
            .iter()
            .chain(self.open.iter())
            .filter(move |b| b.start < to && b.start + self.resolution > from)
    }

    /// Whether `[from, to)` is aligned to this level's bucket grid, so
    /// bucket aggregates compose exactly to the window aggregate.
    pub fn covers_aligned(&self, from: i64, to: i64) -> bool {
        from % self.resolution == 0 && to % self.resolution == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_matches_sequential_push() {
        let data: Vec<f64> = (0..97).map(|i| f64::from(i) * 1.37 - 20.0).collect();
        let mut whole = Aggregate::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Aggregate::new();
        let mut right = Aggregate::new();
        for &x in &data[..31] {
            left.push(x);
        }
        for &x in &data[31..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count, whole.count);
        assert!((left.sum - whole.sum).abs() < 1e-9);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!(left.min, whole.min);
        assert_eq!(left.max, whole.max);
    }

    #[test]
    fn minute_buckets_cascade_to_hours() {
        let mut mins = RollupLevel::new(MINUTE);
        let mut hours = RollupLevel::new(HOUR);
        // 3 hours of 10-second samples.
        for i in 0..(3 * 360) {
            let ts = i64::from(i) * 10;
            if let Some(done) = mins.push(ts, f64::from(i)) {
                hours.fold(done.start, done.agg);
            }
        }
        assert_eq!(mins.sealed().len(), 179);
        assert_eq!(hours.sealed().len(), 2);
        let h0 = hours.sealed()[0];
        assert_eq!(h0.start, 0);
        // First hour summarises samples 0..360 except those still open...
        // minute 59 sealed when minute 60 opened, so hour 0 has 360 samples.
        assert_eq!(h0.agg.count, 360);
        assert!((h0.agg.mean() - 179.5).abs() < 1e-9);
    }

    #[test]
    fn rollup_mean_reaggregates_not_mean_of_means() {
        // Unequal bucket populations: 1 sample in minute 0, 59 in minute 1.
        let mut mins = RollupLevel::new(MINUTE);
        mins.push(0, 100.0);
        for i in 0..59 {
            mins.push(60 + i, 0.0);
        }
        mins.push(120, 0.0); // seal minute 1
        let mut window = Aggregate::new();
        for b in mins.buckets_in(0, 120) {
            window.merge(&b.agg);
        }
        // Mean of means would give (100 + 0) / 2 = 50; the true mean is
        // 100 / 60 ≈ 1.67.
        assert_eq!(window.count, 60);
        assert!((window.mean() - 100.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn alignment_check() {
        let l = RollupLevel::new(MINUTE);
        assert!(l.covers_aligned(0, 3600));
        assert!(l.covers_aligned(120, 180));
        assert!(!l.covers_aligned(30, 3600));
        assert!(!l.covers_aligned(0, 90));
    }

    #[test]
    fn negative_timestamps_bucket_correctly() {
        let mut l = RollupLevel::new(MINUTE);
        l.push(-61, 1.0);
        l.push(-60, 2.0);
        l.push(-1, 3.0);
        l.push(0, 4.0);
        // -61 is in bucket [-120, -60); -60 and -1 in [-60, 0); 0 in [0, 60).
        assert_eq!(l.sealed().len(), 2);
        assert_eq!(l.sealed()[0].start, -120);
        assert_eq!(l.sealed()[1].start, -60);
        assert_eq!(l.sealed()[1].agg.count, 2);
    }
}
