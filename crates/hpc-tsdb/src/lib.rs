//! # hpc-tsdb
//!
//! An embedded, compressed, sharded time-series store sized for facility
//! telemetry at per-node scale (thousands of series, months of samples).
//!
//! Layered bottom-up:
//!
//! - [`bitstream`] — MSB-first bit reader/writer over [`bytes`] buffers;
//! - [`chunk`] — Gorilla-style codec: delta-of-delta timestamps and
//!   XOR-encoded values, lossless for every `f64` bit pattern;
//! - [`rollup`] — mergeable aggregates and the raw → 1-min → 1-h
//!   downsampling cascade (count/sum/min/max + Welford moments, so means
//!   re-aggregate exactly);
//! - [`series`] — one series: sealed chunks + active chunk + rollups;
//! - [`store`] — the sharded store and its channel-fed ingest pipeline
//!   (writers hashed by series id, one thread per shard, poisoned batches
//!   rejected without killing the writer);
//! - [`cache`] — bounded LRU cache of decoded chunks, shared by all
//!   store-level queries (sealed chunks are immutable, so entries never
//!   need invalidation);
//! - [`query`] — range scans, aligned aggregations (mean/max/p95),
//!   rollup-aware planning, change-point segment means, and the parallel
//!   multi-series fan-out layer with per-store [`QueryStats`]
//!   instrumentation.

#![warn(missing_docs)]

pub mod bitstream;
pub mod cache;
pub mod chunk;
pub mod query;
pub mod rollup;
pub mod series;
pub mod store;

pub use cache::ChunkCache;
pub use query::{
    aggregate, aligned_windows, fanout_aggregate, fanout_group, fanout_windows, segment_means,
    store_aggregate, store_segment_means, store_windows, window_aggregate, AggOp, GroupValue,
    Plan, QueryStats, WindowValue,
};
pub use rollup::Aggregate;
pub use series::{Series, SeriesMeta};
pub use store::{IngestError, IngestPipeline, SeriesId, StoreConfig, TsdbStore};
