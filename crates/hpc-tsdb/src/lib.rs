//! # hpc-tsdb
//!
//! An embedded, compressed, sharded time-series store sized for facility
//! telemetry at per-node scale (thousands of series, months of samples).
//!
//! Layered bottom-up:
//!
//! - [`bitstream`] — MSB-first bit reader/writer over [`bytes`] buffers;
//! - [`chunk`] — Gorilla-style codec: delta-of-delta timestamps and
//!   XOR-encoded values, lossless for every `f64` bit pattern;
//! - [`rollup`] — mergeable aggregates and the raw → 1-min → 1-h
//!   downsampling cascade (count/sum/min/max + Welford moments, so means
//!   re-aggregate exactly);
//! - [`series`] — one series: sealed chunks + active chunk + rollups;
//! - [`store`] — the sharded store and its channel-fed ingest pipeline
//!   (writers hashed by series id, one thread per shard);
//! - [`query`] — range scans, aligned aggregations (mean/max/p95),
//!   rollup-aware planning and change-point segment means.

#![warn(missing_docs)]

pub mod bitstream;
pub mod chunk;
pub mod query;
pub mod rollup;
pub mod series;
pub mod store;

pub use query::{
    aggregate, aligned_windows, segment_means, window_aggregate, AggOp, Plan, WindowValue,
};
pub use rollup::Aggregate;
pub use series::{Series, SeriesMeta};
pub use store::{IngestPipeline, SeriesId, StoreConfig, TsdbStore};
