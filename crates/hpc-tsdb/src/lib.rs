//! # hpc-tsdb
//!
//! An embedded, compressed, sharded time-series store sized for facility
//! telemetry at per-node scale (thousands of series, months of samples).
//!
//! Layered bottom-up:
//!
//! - [`bitstream`] — MSB-first bit reader/writer over [`bytes`] buffers;
//! - [`chunk`] — Gorilla-style codec: delta-of-delta timestamps and
//!   XOR-encoded values, lossless for every `f64` bit pattern; decoding
//!   yields columnar blocks ([`ColumnBlock`]) and compacted chunks carry
//!   block-level zone maps ([`Zone`]);
//! - [`rollup`] — mergeable aggregates and the raw → 1-min → 1-h
//!   downsampling cascade (count/sum/min/max + Welford moments, so means
//!   re-aggregate exactly);
//! - [`series`] — one series: sealed chunks + active chunk + rollups;
//! - [`store`] — the sharded store, its channel-fed ingest pipeline
//!   (writers hashed by series id, one thread per shard, poisoned batches
//!   rejected without killing the writer), and the on-demand compaction
//!   pass ([`TsdbStore::compact`]) that rewrites runs of small sealed
//!   chunks into large zone-mapped ones;
//! - [`cache`] — bounded LRU cache of decoded columnar blocks, keyed by
//!   chunk uid and shared by all store-level queries (sealed chunks are
//!   immutable and replacement chunks get fresh uids, so entries never
//!   need invalidation);
//! - [`query`] — range scans, aligned aggregations (mean/max/p95),
//!   rollup-aware planning, zone-map pruning, scan-cost estimation
//!   ([`estimate_scan`]), change-point segment means, and the parallel
//!   multi-series fan-out layer with per-store [`QueryStats`]
//!   instrumentation;
//! - [`persist`] — the versioned, checksummed snapshot format
//!   ([`TsdbStore::snapshot_to`] / [`TsdbStore::open_snapshot`]): series
//!   metadata, sealed chunks verbatim, rollup state and active tails,
//!   framed in CRC-guarded blocks with a footer so truncation and bit rot
//!   are detected, never mis-read;
//! - [`wal`] — the write-ahead log on the ingest path and the
//!   [`recover`] entry point (newest valid snapshot + WAL replay, torn
//!   tail records skipped and counted);
//! - [`faults`] — deterministic fault injection (truncation, bit flips,
//!   mid-write crashes) backing the crash-recovery test suite;
//! - [`quality`] — the ingest sanitisation stage ([`Sanitizer`]) that
//!   quarantines implausible samples into a per-series quality mask
//!   instead of storing them, and gap-aware queries
//!   ([`store_gap_aggregate`] / [`store_gap_windows`]) that aggregate over
//!   present samples and report a coverage fraction against the series'
//!   cadence hint.
//!
//! ## Durability in one example
//!
//! Snapshot a store, "lose" the process, and recover bit-identically:
//!
//! ```
//! use hpc_tsdb::{recover, SeriesMeta, StoreConfig, TsdbStore};
//!
//! let store = TsdbStore::default();
//! let id = store.register(SeriesMeta {
//!     name: "node.0".into(), unit: "kW".into(), interval_hint: 60,
//! });
//! for i in 0..600i64 {
//!     store.append(id, i * 60, 0.4 + (i % 9) as f64 * 0.01);
//! }
//! let snap = std::env::temp_dir().join(format!("doc-lib-{}.tsnap", std::process::id()));
//! store.snapshot_to_path(&snap).unwrap();
//!
//! let (recovered, report) = recover(Some(&snap), None, StoreConfig::default()).unwrap();
//! assert_eq!(report.snapshot_samples, 600);
//! let rid = recovered.lookup("node.0").unwrap();
//! assert_eq!(
//!     recovered.with_series(rid, |s| s.scan(i64::MIN, i64::MAX)),
//!     store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)),
//! );
//! std::fs::remove_file(&snap).unwrap();
//! ```

#![warn(missing_docs)]

pub mod bitstream;
pub mod cache;
pub mod chunk;
pub mod faults;
pub mod persist;
pub mod quality;
pub mod query;
pub mod rollup;
pub mod series;
pub mod store;
pub mod wal;

pub use cache::ChunkCache;
pub use chunk::{ColumnBlock, Zone};
pub use persist::{PersistError, SnapshotStats};
pub use quality::{
    store_gap_aggregate, store_gap_windows, GapAwareValue, GapWindow, QuarantineReason,
    QuarantinedSample, SampleFate, SanitizeConfig, SanitizeStats, Sanitizer,
};
pub use query::{
    aggregate, aligned_windows, estimate_scan, fanout_aggregate, fanout_group, fanout_windows,
    fanout_workers, segment_means, store_aggregate, store_segment_means, store_windows,
    window_aggregate, AggOp, GroupValue, Plan, QueryStats, WindowValue,
};
pub use rollup::Aggregate;
pub use series::{Series, SeriesMeta};
pub use store::{
    CompactionStats, IngestError, IngestPipeline, ReadView, SeriesId, StoreConfig, TsdbStore,
    COMPACT_TARGET_SAMPLES,
};
pub use wal::{recover, RecoveryReport, WalConfig, WalReplayStats, WalWriter};
