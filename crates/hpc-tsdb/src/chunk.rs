//! Gorilla-style compressed chunks: delta-of-delta timestamps plus
//! XOR-encoded floats over a [`bytes`]-backed bit stream.
//!
//! ## Wire format (per chunk)
//!
//! The first sample is stored raw: 64-bit timestamp, 64-bit IEEE-754 value.
//! Every following sample appends two fields:
//!
//! **Timestamp** — `dod = (tₙ − tₙ₋₁) − (tₙ₋₁ − tₙ₋₂)` (the first delta is
//! encoded as its own dod with a previous delta of 0), zig-zagged and
//! prefix-coded by magnitude class:
//!
//! | prefix  | payload          | covers (zig-zag)     |
//! |---------|------------------|----------------------|
//! | `0`     | —                | dod = 0 (on cadence) |
//! | `10`    | 7 bits           | < 2⁷                 |
//! | `110`   | 10 bits          | < 2¹⁰                |
//! | `1110`  | 14 bits          | < 2¹⁴                |
//! | `1111`  | 64 bits          | anything             |
//!
//! **Value** — XOR against the previous value's bit pattern:
//!
//! | prefix | payload                                 | covers             |
//! |--------|-----------------------------------------|--------------------|
//! | `0`    | —                                       | identical bits     |
//! | `10`   | meaningful bits in the previous window  | window still fits  |
//! | `11`   | 6-bit leading, 6-bit (length−1), bits   | new window         |
//!
//! Operating on raw bit patterns makes the codec lossless for **every**
//! `f64`, including NaN payloads, ±0.0, infinities and subnormals.

use crate::bitstream::{zigzag, unzigzag, BitReader, BitWriter};
use crate::rollup::Aggregate;
use bytes::Bytes;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide chunk identity counter. Every sealed chunk gets a fresh
/// uid at construction; clones share it (they share the payload). The uid
/// is the decoded-chunk cache key, so compaction — which replaces many
/// sealed chunks with one re-encoded chunk — needs no cache invalidation
/// protocol: the new chunk has a new uid and the orphaned entries simply
/// age out of the LRU.
static NEXT_CHUNK_UID: AtomicU64 = AtomicU64::new(1);

fn fresh_uid() -> u64 {
    NEXT_CHUNK_UID.fetch_add(1, Ordering::Relaxed)
}

/// Timestamp-class payload widths, in prefix order.
const TS_CLASSES: [(u8, u64, u8); 3] = [
    // (payload width, class bound on zig-zagged dod, prefix length marker)
    (7, 1 << 7, 2),
    (10, 1 << 10, 3),
    (14, 1 << 14, 4),
];

/// An in-progress chunk accepting appends.
#[derive(Debug, Clone, Default)]
pub struct ChunkBuilder {
    bits: BitWriter,
    count: u32,
    first_ts: i64,
    last_ts: i64,
    prev_delta: i64,
    prev_value_bits: u64,
    /// Current XOR window: (leading zeros, meaningful length).
    window: Option<(u8, u8)>,
    agg: Aggregate,
}

impl ChunkBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples appended.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether no samples have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Timestamp of the last appended sample (undefined when empty).
    pub fn last_ts(&self) -> i64 {
        self.last_ts
    }

    /// Timestamp of the first appended sample (undefined when empty).
    pub fn first_ts(&self) -> i64 {
        self.first_ts
    }

    /// Running aggregate over the appended samples.
    pub fn aggregate(&self) -> &Aggregate {
        &self.agg
    }

    /// Compressed size so far in bytes (rounded up).
    pub fn size_bytes(&self) -> usize {
        self.bits.len_bits().div_ceil(8) as usize
    }

    /// Append one sample.
    ///
    /// # Panics
    /// Panics if `ts` is not strictly after the previous sample — series
    /// are append-only with strictly increasing timestamps.
    pub fn push(&mut self, ts: i64, value: f64) {
        let value_bits = value.to_bits();
        if self.count == 0 {
            self.bits.push_bits(ts as u64, 64);
            self.bits.push_bits(value_bits, 64);
            self.first_ts = ts;
            self.prev_delta = 0;
        } else {
            assert!(ts > self.last_ts, "timestamp {ts} not after {}", self.last_ts);
            let delta = ts - self.last_ts;
            let dod = delta - self.prev_delta;
            self.encode_dod(dod);
            self.encode_xor(value_bits);
            self.prev_delta = delta;
        }
        self.prev_value_bits = value_bits;
        self.last_ts = ts;
        self.count += 1;
        self.agg.push(value);
    }

    fn encode_dod(&mut self, dod: i64) {
        if dod == 0 {
            self.bits.push_bit(false);
            return;
        }
        let z = zigzag(dod);
        for (i, &(width, bound, _)) in TS_CLASSES.iter().enumerate() {
            if z < bound {
                // Prefix: i+1 ones then a zero.
                for _ in 0..=i {
                    self.bits.push_bit(true);
                }
                self.bits.push_bit(false);
                self.bits.push_bits(z, width);
                return;
            }
        }
        // Escape class: '1111' + full 64-bit zig-zag.
        self.bits.push_bits(0b1111, 4);
        self.bits.push_bits(z, 64);
    }

    fn encode_xor(&mut self, value_bits: u64) {
        let xor = value_bits ^ self.prev_value_bits;
        if xor == 0 {
            self.bits.push_bit(false);
            return;
        }
        self.bits.push_bit(true);
        let leading = (xor.leading_zeros() as u8).min(63);
        let trailing = xor.trailing_zeros() as u8;
        let fits_window = self.window.is_some_and(|(wl, wlen)| {
            leading >= wl && trailing >= 64 - wl - wlen
        });
        if fits_window {
            let (wl, wlen) = self.window.expect("window checked above");
            self.bits.push_bit(false);
            self.bits.push_bits(xor >> (64 - wl - wlen), wlen);
        } else {
            let len = 64 - leading - trailing; // 1..=64
            self.bits.push_bit(true);
            self.bits.push_bits(u64::from(leading), 6);
            self.bits.push_bits(u64::from(len - 1), 6);
            self.bits.push_bits(xor >> trailing, len);
            self.window = Some((leading, len));
        }
    }

    /// Decode the samples appended so far (exercises the same read path as
    /// sealed chunks, so the active chunk is never a special case).
    pub fn decode(&self) -> Vec<(i64, f64)> {
        let (bytes, len_bits) = self.bits.snapshot();
        decode_stream(&bytes, len_bits, self.count)
    }

    /// Seal into an immutable [`Chunk`].
    pub fn seal(self) -> Chunk {
        let (data, len_bits) = self.bits.finish();
        Chunk {
            data,
            len_bits,
            count: self.count,
            first_ts: self.first_ts,
            last_ts: self.last_ts,
            agg: self.agg,
            uid: fresh_uid(),
            zones: None,
        }
    }
}

/// A block-level zone map entry: the time bounds and pre-computed
/// aggregate of one zone of a compacted chunk. Zones correspond exactly
/// to the original sealed chunks the compaction pass rewrote, and each
/// zone's [`Aggregate`] is carried over verbatim from its source chunk,
/// so zone-served answers are bit-identical to the pre-compaction
/// chunk-level answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zone {
    /// Timestamp of the first sample in the zone.
    pub first_ts: i64,
    /// Timestamp of the last sample in the zone.
    pub last_ts: i64,
    /// Pre-computed aggregate over every sample in the zone.
    pub agg: Aggregate,
}

impl Zone {
    /// Whether `[from, to)` overlaps this zone's time span.
    pub fn overlaps(&self, from: i64, to: i64) -> bool {
        self.first_ts < to && self.last_ts >= from
    }

    /// Whether every sample of this zone lies inside `[from, to)` — such
    /// a zone contributes its pre-computed aggregate without any decode.
    pub fn contained_in(&self, from: i64, to: i64) -> bool {
        self.first_ts >= from && self.last_ts < to
    }
}

/// A decoded chunk in columnar form: parallel flat vectors of timestamps
/// and values. Aggregation kernels run as tight loops over `values`
/// slices with time bounds found by binary search on `ts`, instead of
/// filtering `(i64, f64)` tuples sample by sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnBlock {
    ts: Vec<i64>,
    values: Vec<f64>,
}

impl ColumnBlock {
    /// Build a block from parallel columns.
    ///
    /// # Panics
    /// Panics if the columns differ in length.
    pub fn new(ts: Vec<i64>, values: Vec<f64>) -> Self {
        assert_eq!(ts.len(), values.len(), "column length mismatch");
        ColumnBlock { ts, values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the block holds no samples.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The timestamp column.
    pub fn timestamps(&self) -> &[i64] {
        &self.ts
    }

    /// The value column.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Index range of the samples with timestamps in `[from, to)`, found
    /// by binary search (timestamps are strictly increasing).
    pub fn range(&self, from: i64, to: i64) -> Range<usize> {
        let lo = self.ts.partition_point(|&t| t < from);
        let hi = lo + self.ts[lo..].partition_point(|&t| t < to);
        lo..hi
    }

    /// Iterate `(timestamp, value)` pairs — the row-oriented view for
    /// callers that still need interleaved samples.
    pub fn iter(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        self.ts.iter().copied().zip(self.values.iter().copied())
    }
}

/// A sealed, immutable, compressed chunk. Clones share the underlying
/// buffer (and identity uid), so handing chunks to readers is O(1).
#[derive(Debug, Clone)]
pub struct Chunk {
    data: Bytes,
    len_bits: u64,
    count: u32,
    first_ts: i64,
    last_ts: i64,
    agg: Aggregate,
    uid: u64,
    zones: Option<Arc<Vec<Zone>>>,
}

impl Chunk {
    /// Number of samples.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether the chunk holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// First sample timestamp.
    pub fn first_ts(&self) -> i64 {
        self.first_ts
    }

    /// Last sample timestamp.
    pub fn last_ts(&self) -> i64 {
        self.last_ts
    }

    /// Pre-computed aggregate over the whole chunk.
    pub fn aggregate(&self) -> &Aggregate {
        &self.agg
    }

    /// Compressed payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// The raw compressed payload. Together with [`Self::len_bits`] this is
    /// everything a snapshot needs to persist a sealed chunk verbatim.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Exact number of valid bits in [`Self::data`] (the final byte may be
    /// zero-padded).
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Reassemble a sealed chunk from persisted parts. The inverse of
    /// reading [`Self::data`]/[`Self::len_bits`] plus the header fields —
    /// used by snapshot recovery, which verifies a CRC over the serialised
    /// bytes before calling this, so no structural validation happens here.
    pub fn from_parts(
        data: Bytes,
        len_bits: u64,
        count: u32,
        first_ts: i64,
        last_ts: i64,
        agg: Aggregate,
    ) -> Self {
        Chunk { data, len_bits, count, first_ts, last_ts, agg, uid: fresh_uid(), zones: None }
    }

    /// Process-unique identity of this sealed payload (shared by clones).
    /// The decoded-chunk cache keys on this, so a compaction pass that
    /// replaces chunks needs no explicit invalidation.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Attach a block-level zone map (compaction output or snapshot
    /// recovery). Zones must partition the chunk's samples in timestamp
    /// order; this is the builder's/recovery's contract, not validated
    /// here.
    pub fn with_zones(mut self, zones: Vec<Zone>) -> Self {
        self.zones = if zones.is_empty() { None } else { Some(Arc::new(zones)) };
        self
    }

    /// The chunk's zone map, if compaction attached one. `None` for
    /// ordinary sealed chunks (their whole-chunk aggregate plays the same
    /// role at chunk granularity).
    pub fn zones(&self) -> Option<&[Zone]> {
        self.zones.as_deref().map(Vec::as_slice)
    }

    /// Whether `[from, to)` overlaps this chunk's time span.
    pub fn overlaps(&self, from: i64, to: i64) -> bool {
        self.first_ts < to && self.last_ts >= from
    }

    /// Whether every sample of this chunk lies inside `[from, to)` — the
    /// whole-chunk shortcut: such a chunk contributes its pre-computed
    /// aggregate without being decoded.
    pub fn contained_in(&self, from: i64, to: i64) -> bool {
        self.first_ts >= from && self.last_ts < to
    }

    /// Decode every sample into interleaved `(timestamp, value)` rows.
    pub fn decode(&self) -> Vec<(i64, f64)> {
        decode_stream(&self.data, self.len_bits, self.count)
    }

    /// Decode every sample into a columnar block (flat timestamp and
    /// value vectors) — the form the query layer caches and aggregates
    /// over.
    pub fn decode_columns(&self) -> ColumnBlock {
        let mut ts = Vec::with_capacity(self.count as usize);
        let mut values = Vec::with_capacity(self.count as usize);
        decode_each(&self.data, self.len_bits, self.count, |t, v| {
            ts.push(t);
            values.push(v);
        });
        ColumnBlock { ts, values }
    }
}

fn decode_stream(data: &[u8], len_bits: u64, count: u32) -> Vec<(i64, f64)> {
    let mut out = Vec::with_capacity(count as usize);
    decode_each(data, len_bits, count, |t, v| out.push((t, v)));
    out
}

/// The single Gorilla decode loop: feeds every `(timestamp, value)` pair
/// to `sink` in stream order. Row- and column-oriented decodes are thin
/// adapters over this, so there is exactly one read path to get right.
fn decode_each(data: &[u8], len_bits: u64, count: u32, mut sink: impl FnMut(i64, f64)) {
    if count == 0 {
        return;
    }
    let mut r = BitReader::new(data, len_bits);
    let mut ts = r.read_bits(64) as i64;
    let mut value_bits = r.read_bits(64);
    let mut delta = 0i64;
    let mut window: Option<(u8, u8)> = None;
    sink(ts, f64::from_bits(value_bits));

    for _ in 1..count {
        // Timestamp field.
        let dod = if !r.read_bit() {
            0
        } else {
            let mut class = 0;
            while class < TS_CLASSES.len() && r.read_bit() {
                class += 1;
            }
            if class < TS_CLASSES.len() {
                unzigzag(r.read_bits(TS_CLASSES[class].0))
            } else {
                unzigzag(r.read_bits(64))
            }
        };
        delta += dod;
        ts += delta;

        // Value field.
        if r.read_bit() {
            if r.read_bit() {
                let leading = r.read_bits(6) as u8;
                let len = r.read_bits(6) as u8 + 1;
                let payload = r.read_bits(len);
                value_bits ^= payload << (64 - leading - len);
                window = Some((leading, len));
            } else {
                let (wl, wlen) = window.expect("window reuse before window set");
                let payload = r.read_bits(wlen);
                value_bits ^= payload << (64 - wl - wlen);
            }
        }
        sink(ts, f64::from_bits(value_bits));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(samples: &[(i64, f64)]) {
        let mut b = ChunkBuilder::new();
        for &(t, v) in samples {
            b.push(t, v);
        }
        // Active decode and sealed decode must agree bit-for-bit.
        let active = b.decode();
        let sealed = b.seal();
        let decoded = sealed.decode();
        assert_eq!(active.len(), samples.len());
        assert_eq!(decoded.len(), samples.len());
        for (i, &(t, v)) in samples.iter().enumerate() {
            for got in [&active[i], &decoded[i]] {
                assert_eq!(got.0, t, "timestamp {i}");
                assert_eq!(got.1.to_bits(), v.to_bits(), "value bits at {i}: {v}");
            }
        }
    }

    #[test]
    fn regular_cadence_smooth_values() {
        let samples: Vec<(i64, f64)> = (0..500)
            .map(|i| (1_640_995_200 + i * 60, 3220.0 + f64::from(i as i32 % 7) * 0.125))
            .collect();
        roundtrip(&samples);
    }

    #[test]
    fn irregular_cadence() {
        let gaps = [1i64, 59, 60, 61, 3600, 2, 86_400, 60, 60, 7, 123_456_789];
        let mut t = 0i64;
        let mut samples = Vec::new();
        for (i, g) in gaps.iter().enumerate() {
            t += g;
            samples.push((t, i as f64 * 0.1));
        }
        roundtrip(&samples);
    }

    #[test]
    fn pathological_bit_patterns_are_lossless() {
        let specials = [
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            f64::from_bits(0xfff0_0000_0000_0001), // signalling-ish NaN
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::from_bits(1),      // smallest subnormal
            f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
            f64::MAX,
            f64::MIN,
            1.0,
            -1.0,
        ];
        let samples: Vec<(i64, f64)> =
            specials.iter().enumerate().map(|(i, &v)| (i as i64 * 60, v)).collect();
        roundtrip(&samples);
    }

    #[test]
    fn constant_run_costs_two_bits_per_sample() {
        let mut b = ChunkBuilder::new();
        for i in 0..10_000 {
            b.push(i64::from(i) * 60, 42.5);
        }
        // 128-bit header + ~1 ts bit ('10'-class once, then '0') + 1 value
        // bit per sample.
        let bytes_per_sample = b.size_bytes() as f64 / 10_000.0;
        assert!(bytes_per_sample < 0.3, "constant run at {bytes_per_sample} B/sample");
        roundtrip(&(0..100).map(|i| (i64::from(i) * 60, 42.5)).collect::<Vec<_>>());
    }

    #[test]
    fn negative_timestamps_and_dod() {
        // Pre-epoch timestamps and shrinking deltas (negative dod).
        let samples = vec![
            (-10_000i64, 1.0),
            (-9_000, 2.0),
            (-8_500, 3.0),
            (-8_400, 4.0),
            (-8_399, 5.0),
        ];
        roundtrip(&samples);
    }

    #[test]
    fn columnar_decode_matches_row_decode_bit_for_bit() {
        let mut b = ChunkBuilder::new();
        let specials = [1.0, f64::NAN, -0.0, f64::from_bits(0x7ff8_0000_dead_beef), 5e-324];
        for i in 0..400 {
            b.push(i64::from(i) * 7 + 3, specials[i as usize % specials.len()] + f64::from(i % 5));
        }
        let c = b.seal();
        let rows = c.decode();
        let cols = c.decode_columns();
        assert_eq!(cols.len(), rows.len());
        for (i, &(t, v)) in rows.iter().enumerate() {
            assert_eq!(cols.timestamps()[i], t);
            assert_eq!(cols.values()[i].to_bits(), v.to_bits());
        }
        // Row view reconstructed from the columns agrees too.
        for ((ct, cv), &(t, v)) in cols.iter().zip(&rows) {
            assert_eq!(ct, t);
            assert_eq!(cv.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn column_block_range_binary_search() {
        let mut b = ChunkBuilder::new();
        for i in 0..100 {
            b.push(i64::from(i) * 10, f64::from(i));
        }
        let cols = b.seal().decode_columns();
        assert_eq!(cols.range(0, 1000), 0..100);
        assert_eq!(cols.range(i64::MIN, i64::MAX), 0..100);
        assert_eq!(cols.range(0, 1), 0..1); // [0, 1) holds only ts 0
        assert_eq!(cols.range(995, 2000), 100..100);
        assert_eq!(cols.range(-50, 0), 0..0); // to is exclusive
        assert_eq!(cols.range(35, 75), 4..8); // ts 40, 50, 60, 70
        assert_eq!(cols.range(40, 71), 4..8); // inclusive from, exclusive to
        let empty = ColumnBlock::default();
        assert!(empty.is_empty());
        assert_eq!(empty.range(0, 100), 0..0);
    }

    #[test]
    fn uids_are_unique_and_shared_by_clones() {
        let a = chunk_from(&[(0, 1.0), (60, 2.0)]);
        let b = chunk_from(&[(0, 1.0), (60, 2.0)]);
        assert_ne!(a.uid(), b.uid(), "identical payloads still have distinct identities");
        assert_eq!(a.uid(), a.clone().uid());
        // from_parts mints a fresh identity: recovery must not collide
        // with any live chunk.
        let rebuilt = Chunk::from_parts(
            bytes::Bytes::from(a.data().to_vec()),
            a.len_bits(),
            a.len(),
            a.first_ts(),
            a.last_ts(),
            *a.aggregate(),
        );
        assert_ne!(rebuilt.uid(), a.uid());
    }

    #[test]
    fn zones_attach_and_answer_containment() {
        let c = chunk_from(&(0..20).map(|i| (i64::from(i) * 60, 1.0)).collect::<Vec<_>>());
        assert!(c.zones().is_none());
        let mut z0 = Aggregate::default();
        let mut z1 = Aggregate::default();
        (0..10).for_each(|_| z0.push(1.0));
        (10..20).for_each(|_| z1.push(1.0));
        let zoned = c.clone().with_zones(vec![
            Zone { first_ts: 0, last_ts: 540, agg: z0 },
            Zone { first_ts: 600, last_ts: 1140, agg: z1 },
        ]);
        let zones = zoned.zones().expect("zones attached");
        assert_eq!(zones.len(), 2);
        assert!(zones[0].contained_in(0, 600));
        assert!(!zones[0].contained_in(0, 540)); // last sample at 540 excluded
        assert!(zones[1].overlaps(1140, 2000));
        assert!(!zones[1].overlaps(1141, 2000));
        // Empty zone list normalises to None.
        assert!(c.clone().with_zones(Vec::new()).zones().is_none());
    }

    fn chunk_from(samples: &[(i64, f64)]) -> Chunk {
        let mut b = ChunkBuilder::new();
        for &(t, v) in samples {
            b.push(t, v);
        }
        b.seal()
    }

    #[test]
    fn aggregate_tracks_all_samples() {
        let mut b = ChunkBuilder::new();
        for i in 0..100 {
            b.push(i64::from(i), f64::from(i));
        }
        let agg = b.aggregate();
        assert_eq!(agg.count, 100);
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, 99.0);
        assert!((agg.mean() - 49.5).abs() < 1e-12);
        let c = b.seal();
        assert_eq!(c.aggregate().count, 100);
        assert!(c.overlaps(99, 1_000));
        assert!(!c.overlaps(100, 1_000));
        assert!(!c.overlaps(-50, 0));
        assert!(c.overlaps(-50, 1));
    }
}
