//! Gorilla-style compressed chunks: delta-of-delta timestamps plus
//! XOR-encoded floats over a [`bytes`]-backed bit stream.
//!
//! ## Wire format (per chunk)
//!
//! The first sample is stored raw: 64-bit timestamp, 64-bit IEEE-754 value.
//! Every following sample appends two fields:
//!
//! **Timestamp** — `dod = (tₙ − tₙ₋₁) − (tₙ₋₁ − tₙ₋₂)` (the first delta is
//! encoded as its own dod with a previous delta of 0), zig-zagged and
//! prefix-coded by magnitude class:
//!
//! | prefix  | payload          | covers (zig-zag)     |
//! |---------|------------------|----------------------|
//! | `0`     | —                | dod = 0 (on cadence) |
//! | `10`    | 7 bits           | < 2⁷                 |
//! | `110`   | 10 bits          | < 2¹⁰                |
//! | `1110`  | 14 bits          | < 2¹⁴                |
//! | `1111`  | 64 bits          | anything             |
//!
//! **Value** — XOR against the previous value's bit pattern:
//!
//! | prefix | payload                                 | covers             |
//! |--------|-----------------------------------------|--------------------|
//! | `0`    | —                                       | identical bits     |
//! | `10`   | meaningful bits in the previous window  | window still fits  |
//! | `11`   | 6-bit leading, 6-bit (length−1), bits   | new window         |
//!
//! Operating on raw bit patterns makes the codec lossless for **every**
//! `f64`, including NaN payloads, ±0.0, infinities and subnormals.

use crate::bitstream::{zigzag, unzigzag, BitReader, BitWriter};
use crate::rollup::Aggregate;
use bytes::Bytes;

/// Timestamp-class payload widths, in prefix order.
const TS_CLASSES: [(u8, u64, u8); 3] = [
    // (payload width, class bound on zig-zagged dod, prefix length marker)
    (7, 1 << 7, 2),
    (10, 1 << 10, 3),
    (14, 1 << 14, 4),
];

/// An in-progress chunk accepting appends.
#[derive(Debug, Clone, Default)]
pub struct ChunkBuilder {
    bits: BitWriter,
    count: u32,
    first_ts: i64,
    last_ts: i64,
    prev_delta: i64,
    prev_value_bits: u64,
    /// Current XOR window: (leading zeros, meaningful length).
    window: Option<(u8, u8)>,
    agg: Aggregate,
}

impl ChunkBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples appended.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether no samples have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Timestamp of the last appended sample (undefined when empty).
    pub fn last_ts(&self) -> i64 {
        self.last_ts
    }

    /// Timestamp of the first appended sample (undefined when empty).
    pub fn first_ts(&self) -> i64 {
        self.first_ts
    }

    /// Running aggregate over the appended samples.
    pub fn aggregate(&self) -> &Aggregate {
        &self.agg
    }

    /// Compressed size so far in bytes (rounded up).
    pub fn size_bytes(&self) -> usize {
        self.bits.len_bits().div_ceil(8) as usize
    }

    /// Append one sample.
    ///
    /// # Panics
    /// Panics if `ts` is not strictly after the previous sample — series
    /// are append-only with strictly increasing timestamps.
    pub fn push(&mut self, ts: i64, value: f64) {
        let value_bits = value.to_bits();
        if self.count == 0 {
            self.bits.push_bits(ts as u64, 64);
            self.bits.push_bits(value_bits, 64);
            self.first_ts = ts;
            self.prev_delta = 0;
        } else {
            assert!(ts > self.last_ts, "timestamp {ts} not after {}", self.last_ts);
            let delta = ts - self.last_ts;
            let dod = delta - self.prev_delta;
            self.encode_dod(dod);
            self.encode_xor(value_bits);
            self.prev_delta = delta;
        }
        self.prev_value_bits = value_bits;
        self.last_ts = ts;
        self.count += 1;
        self.agg.push(value);
    }

    fn encode_dod(&mut self, dod: i64) {
        if dod == 0 {
            self.bits.push_bit(false);
            return;
        }
        let z = zigzag(dod);
        for (i, &(width, bound, _)) in TS_CLASSES.iter().enumerate() {
            if z < bound {
                // Prefix: i+1 ones then a zero.
                for _ in 0..=i {
                    self.bits.push_bit(true);
                }
                self.bits.push_bit(false);
                self.bits.push_bits(z, width);
                return;
            }
        }
        // Escape class: '1111' + full 64-bit zig-zag.
        self.bits.push_bits(0b1111, 4);
        self.bits.push_bits(z, 64);
    }

    fn encode_xor(&mut self, value_bits: u64) {
        let xor = value_bits ^ self.prev_value_bits;
        if xor == 0 {
            self.bits.push_bit(false);
            return;
        }
        self.bits.push_bit(true);
        let leading = (xor.leading_zeros() as u8).min(63);
        let trailing = xor.trailing_zeros() as u8;
        let fits_window = self.window.is_some_and(|(wl, wlen)| {
            leading >= wl && trailing >= 64 - wl - wlen
        });
        if fits_window {
            let (wl, wlen) = self.window.expect("window checked above");
            self.bits.push_bit(false);
            self.bits.push_bits(xor >> (64 - wl - wlen), wlen);
        } else {
            let len = 64 - leading - trailing; // 1..=64
            self.bits.push_bit(true);
            self.bits.push_bits(u64::from(leading), 6);
            self.bits.push_bits(u64::from(len - 1), 6);
            self.bits.push_bits(xor >> trailing, len);
            self.window = Some((leading, len));
        }
    }

    /// Decode the samples appended so far (exercises the same read path as
    /// sealed chunks, so the active chunk is never a special case).
    pub fn decode(&self) -> Vec<(i64, f64)> {
        let (bytes, len_bits) = self.bits.snapshot();
        decode_stream(&bytes, len_bits, self.count)
    }

    /// Seal into an immutable [`Chunk`].
    pub fn seal(self) -> Chunk {
        let (data, len_bits) = self.bits.finish();
        Chunk {
            data,
            len_bits,
            count: self.count,
            first_ts: self.first_ts,
            last_ts: self.last_ts,
            agg: self.agg,
        }
    }
}

/// A sealed, immutable, compressed chunk. Clones share the underlying
/// buffer, so handing chunks to readers is O(1).
#[derive(Debug, Clone)]
pub struct Chunk {
    data: Bytes,
    len_bits: u64,
    count: u32,
    first_ts: i64,
    last_ts: i64,
    agg: Aggregate,
}

impl Chunk {
    /// Number of samples.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether the chunk holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// First sample timestamp.
    pub fn first_ts(&self) -> i64 {
        self.first_ts
    }

    /// Last sample timestamp.
    pub fn last_ts(&self) -> i64 {
        self.last_ts
    }

    /// Pre-computed aggregate over the whole chunk.
    pub fn aggregate(&self) -> &Aggregate {
        &self.agg
    }

    /// Compressed payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// The raw compressed payload. Together with [`Self::len_bits`] this is
    /// everything a snapshot needs to persist a sealed chunk verbatim.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Exact number of valid bits in [`Self::data`] (the final byte may be
    /// zero-padded).
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Reassemble a sealed chunk from persisted parts. The inverse of
    /// reading [`Self::data`]/[`Self::len_bits`] plus the header fields —
    /// used by snapshot recovery, which verifies a CRC over the serialised
    /// bytes before calling this, so no structural validation happens here.
    pub fn from_parts(
        data: Bytes,
        len_bits: u64,
        count: u32,
        first_ts: i64,
        last_ts: i64,
        agg: Aggregate,
    ) -> Self {
        Chunk { data, len_bits, count, first_ts, last_ts, agg }
    }

    /// Whether `[from, to)` overlaps this chunk's time span.
    pub fn overlaps(&self, from: i64, to: i64) -> bool {
        self.first_ts < to && self.last_ts >= from
    }

    /// Whether every sample of this chunk lies inside `[from, to)` — the
    /// whole-chunk shortcut: such a chunk contributes its pre-computed
    /// aggregate without being decoded.
    pub fn contained_in(&self, from: i64, to: i64) -> bool {
        self.first_ts >= from && self.last_ts < to
    }

    /// Decode every sample.
    pub fn decode(&self) -> Vec<(i64, f64)> {
        decode_stream(&self.data, self.len_bits, self.count)
    }
}

fn decode_stream(data: &[u8], len_bits: u64, count: u32) -> Vec<(i64, f64)> {
    let mut out = Vec::with_capacity(count as usize);
    if count == 0 {
        return out;
    }
    let mut r = BitReader::new(data, len_bits);
    let mut ts = r.read_bits(64) as i64;
    let mut value_bits = r.read_bits(64);
    let mut delta = 0i64;
    let mut window: Option<(u8, u8)> = None;
    out.push((ts, f64::from_bits(value_bits)));

    for _ in 1..count {
        // Timestamp field.
        let dod = if !r.read_bit() {
            0
        } else {
            let mut class = 0;
            while class < TS_CLASSES.len() && r.read_bit() {
                class += 1;
            }
            if class < TS_CLASSES.len() {
                unzigzag(r.read_bits(TS_CLASSES[class].0))
            } else {
                unzigzag(r.read_bits(64))
            }
        };
        delta += dod;
        ts += delta;

        // Value field.
        if r.read_bit() {
            if r.read_bit() {
                let leading = r.read_bits(6) as u8;
                let len = r.read_bits(6) as u8 + 1;
                let payload = r.read_bits(len);
                value_bits ^= payload << (64 - leading - len);
                window = Some((leading, len));
            } else {
                let (wl, wlen) = window.expect("window reuse before window set");
                let payload = r.read_bits(wlen);
                value_bits ^= payload << (64 - wl - wlen);
            }
        }
        out.push((ts, f64::from_bits(value_bits)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(samples: &[(i64, f64)]) {
        let mut b = ChunkBuilder::new();
        for &(t, v) in samples {
            b.push(t, v);
        }
        // Active decode and sealed decode must agree bit-for-bit.
        let active = b.decode();
        let sealed = b.seal();
        let decoded = sealed.decode();
        assert_eq!(active.len(), samples.len());
        assert_eq!(decoded.len(), samples.len());
        for (i, &(t, v)) in samples.iter().enumerate() {
            for got in [&active[i], &decoded[i]] {
                assert_eq!(got.0, t, "timestamp {i}");
                assert_eq!(got.1.to_bits(), v.to_bits(), "value bits at {i}: {v}");
            }
        }
    }

    #[test]
    fn regular_cadence_smooth_values() {
        let samples: Vec<(i64, f64)> = (0..500)
            .map(|i| (1_640_995_200 + i * 60, 3220.0 + f64::from(i as i32 % 7) * 0.125))
            .collect();
        roundtrip(&samples);
    }

    #[test]
    fn irregular_cadence() {
        let gaps = [1i64, 59, 60, 61, 3600, 2, 86_400, 60, 60, 7, 123_456_789];
        let mut t = 0i64;
        let mut samples = Vec::new();
        for (i, g) in gaps.iter().enumerate() {
            t += g;
            samples.push((t, i as f64 * 0.1));
        }
        roundtrip(&samples);
    }

    #[test]
    fn pathological_bit_patterns_are_lossless() {
        let specials = [
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            f64::from_bits(0xfff0_0000_0000_0001), // signalling-ish NaN
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::from_bits(1),      // smallest subnormal
            f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
            f64::MAX,
            f64::MIN,
            1.0,
            -1.0,
        ];
        let samples: Vec<(i64, f64)> =
            specials.iter().enumerate().map(|(i, &v)| (i as i64 * 60, v)).collect();
        roundtrip(&samples);
    }

    #[test]
    fn constant_run_costs_two_bits_per_sample() {
        let mut b = ChunkBuilder::new();
        for i in 0..10_000 {
            b.push(i64::from(i) * 60, 42.5);
        }
        // 128-bit header + ~1 ts bit ('10'-class once, then '0') + 1 value
        // bit per sample.
        let bytes_per_sample = b.size_bytes() as f64 / 10_000.0;
        assert!(bytes_per_sample < 0.3, "constant run at {bytes_per_sample} B/sample");
        roundtrip(&(0..100).map(|i| (i64::from(i) * 60, 42.5)).collect::<Vec<_>>());
    }

    #[test]
    fn negative_timestamps_and_dod() {
        // Pre-epoch timestamps and shrinking deltas (negative dod).
        let samples = vec![
            (-10_000i64, 1.0),
            (-9_000, 2.0),
            (-8_500, 3.0),
            (-8_400, 4.0),
            (-8_399, 5.0),
        ];
        roundtrip(&samples);
    }

    #[test]
    fn aggregate_tracks_all_samples() {
        let mut b = ChunkBuilder::new();
        for i in 0..100 {
            b.push(i64::from(i), f64::from(i));
        }
        let agg = b.aggregate();
        assert_eq!(agg.count, 100);
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, 99.0);
        assert!((agg.mean() - 49.5).abs() < 1e-12);
        let c = b.seal();
        assert_eq!(c.aggregate().count, 100);
        assert!(c.overlaps(99, 1_000));
        assert!(!c.overlaps(100, 1_000));
        assert!(!c.overlaps(-50, 0));
        assert!(c.overlaps(-50, 1));
    }
}
