//! Sample quality: the ingest sanitisation stage and gap-aware queries.
//!
//! Real facility meters glitch: they drop out (gaps), stick at a stale
//! value, and emit out-of-range outliers. A store that silently averages
//! that garbage produces confidently wrong power numbers. This module adds
//! a *quarantine* stage on the ingest path and *coverage* semantics on the
//! query path:
//!
//! - [`Sanitizer`] screens each sample before it reaches a series.
//!   Out-of-range values (including non-finite ones), runs of bit-identical
//!   values longer than the stuck threshold, and non-monotonic timestamps
//!   are **not stored**; they are recorded in the series' quarantine log
//!   (the per-series quality mask) with their raw value and reason.
//!   Because quarantined samples never enter the chunks, they can never
//!   contribute to chunk aggregates or rollup buckets.
//! - [`store_gap_aggregate`] / [`store_gap_windows`] aggregate over the
//!   samples that *are* present and report a coverage fraction — present
//!   samples over the count the series' cadence hint says the window
//!   should hold — plus the number of quarantined samples in the window,
//!   so a reader can tell a clean mean from one computed over half a gap.
//!
//! The quarantine log lives in memory beside the series (it is diagnostic
//! state, deliberately not part of the snapshot format).

use crate::rollup::Aggregate;
use serde::{Deserialize, Serialize};
use crate::series::Series;
use crate::store::{SeriesId, TsdbStore};
use std::collections::HashMap;

/// Why a sample was quarantined instead of stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarantineReason {
    /// Outside the configured plausible range (or non-finite).
    OutOfRange,
    /// Part of a bit-identical run longer than the stuck threshold.
    Stuck,
    /// Timestamp not strictly after the last stored sample.
    NonMonotonic,
}

/// One quarantined sample: kept for diagnostics, excluded from storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantinedSample {
    /// The timestamp the meter reported.
    pub ts: i64,
    /// The raw value the meter reported.
    pub value: f64,
    /// Why it was refused.
    pub reason: QuarantineReason,
}

/// Sanitisation thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// Minimum plausible value (inclusive).
    pub min_value: f64,
    /// Maximum plausible value (inclusive).
    pub max_value: f64,
    /// A run of more than this many bit-identical consecutive values marks
    /// the excess as stuck. 0 disables stuck detection.
    pub max_stuck_run: u32,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        // Cabinet power meters: a de-energised cabinet legitimately reads
        // ~0 kW, an ARCHER2 cabinet peaks well under 200 kW; 8× spikes are
        // far outside. Three identical f64 power readings in a row are
        // already implausible for a live meter with noise.
        SanitizeConfig { min_value: 0.0, max_value: 500.0, max_stuck_run: 3 }
    }
}

/// What happened to one sanitised sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFate {
    /// Stored in the series.
    Stored,
    /// Quarantined into the series' quality mask.
    Quarantined(QuarantineReason),
}

/// Counters over everything a [`Sanitizer`] has screened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeStats {
    /// Samples stored.
    pub stored: u64,
    /// Samples quarantined as out-of-range.
    pub out_of_range: u64,
    /// Samples quarantined as stuck.
    pub stuck: u64,
    /// Samples quarantined as non-monotonic.
    pub non_monotonic: u64,
}

impl SanitizeStats {
    /// Total quarantined samples.
    pub fn quarantined(&self) -> u64 {
        self.out_of_range + self.stuck + self.non_monotonic
    }
}

/// Per-series stuck-run state.
#[derive(Debug, Clone, Copy, Default)]
struct RunState {
    last_bits: Option<u64>,
    run: u32,
}

/// The ingest sanitisation stage: screens samples for plausibility before
/// they reach the store, quarantining refused ones into the series'
/// quality mask. One sanitizer serves many series; stuck-run state is kept
/// per series id.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    config: SanitizeConfig,
    runs: HashMap<SeriesId, RunState>,
    stats: SanitizeStats,
}

impl Sanitizer {
    /// A sanitizer with the given thresholds.
    pub fn new(config: SanitizeConfig) -> Self {
        Sanitizer { config, runs: HashMap::new(), stats: SanitizeStats::default() }
    }

    /// The thresholds in force.
    pub fn config(&self) -> &SanitizeConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> SanitizeStats {
        self.stats
    }

    /// Screen one sample and either store it in `store` or quarantine it
    /// into the series' quality mask. Returns what happened.
    ///
    /// Unknown series ids quarantine as [`QuarantineReason::NonMonotonic`]
    /// is *not* used for that case — the sample is dropped with
    /// [`SampleFate::Quarantined`] only for known series; for an unknown
    /// id this returns `None`.
    pub fn ingest(
        &mut self,
        store: &TsdbStore,
        id: SeriesId,
        ts: i64,
        value: f64,
    ) -> Option<SampleFate> {
        let reason = self.screen(store, id, ts, value)?;
        match reason {
            None => {
                if store.try_append_batch(id, &[(ts, value)]).is_ok() {
                    self.stats.stored += 1;
                    Some(SampleFate::Stored)
                } else {
                    // Raced or out-of-order against the stored tail.
                    self.stats.non_monotonic += 1;
                    store.quarantine(id, ts, value, QuarantineReason::NonMonotonic);
                    Some(SampleFate::Quarantined(QuarantineReason::NonMonotonic))
                }
            }
            Some(r) => {
                match r {
                    QuarantineReason::OutOfRange => self.stats.out_of_range += 1,
                    QuarantineReason::Stuck => self.stats.stuck += 1,
                    QuarantineReason::NonMonotonic => self.stats.non_monotonic += 1,
                }
                store.quarantine(id, ts, value, r);
                Some(SampleFate::Quarantined(r))
            }
        }
    }

    /// Decide a sample's fate without touching the store contents.
    /// `None` = unknown series; `Some(None)` = store it.
    fn screen(
        &mut self,
        store: &TsdbStore,
        id: SeriesId,
        ts: i64,
        value: f64,
    ) -> Option<Option<QuarantineReason>> {
        let last_ts = store.with_series(id, Series::last_ts)?;
        if let Some(l) = last_ts {
            if ts <= l {
                return Some(Some(QuarantineReason::NonMonotonic));
            }
        }
        if !value.is_finite() || value < self.config.min_value || value > self.config.max_value {
            return Some(Some(QuarantineReason::OutOfRange));
        }
        let run = self.runs.entry(id).or_default();
        if self.config.max_stuck_run > 0 && run.last_bits == Some(value.to_bits()) {
            run.run += 1;
            if run.run >= self.config.max_stuck_run {
                return Some(Some(QuarantineReason::Stuck));
            }
        } else {
            run.last_bits = Some(value.to_bits());
            run.run = 0;
        }
        Some(None)
    }
}

/// A gap-aware aggregate: the usual moments over the samples that are
/// present, plus how complete the window actually was.
#[derive(Debug, Clone)]
pub struct GapAwareValue {
    /// Aggregate over the present (non-quarantined) samples.
    pub agg: Aggregate,
    /// Samples the series' cadence hint says the window should hold.
    pub expected: u64,
    /// `present / expected`, clamped to `[0, 1]`; 1.0 when the hint is
    /// unusable (non-positive).
    pub coverage: f64,
    /// Quarantined samples whose timestamps fall in the window.
    pub quarantined: u64,
}

impl GapAwareValue {
    /// Mean over present samples (NaN when the window is all gap).
    pub fn mean(&self) -> f64 {
        self.agg.mean()
    }
}

/// One gap-aware aligned window.
#[derive(Debug, Clone, Copy)]
pub struct GapWindow {
    /// Window start (inclusive).
    pub start: i64,
    /// Mean over present samples (NaN for an all-gap window).
    pub mean: f64,
    /// Present samples in the window.
    pub count: u64,
    /// Samples the cadence hint expected.
    pub expected: u64,
    /// `count / expected`, clamped to `[0, 1]`.
    pub coverage: f64,
    /// Quarantined samples in the window.
    pub quarantined: u64,
}

fn expected_samples(interval_hint: i64, from: i64, to: i64) -> Option<u64> {
    if interval_hint <= 0 || to <= from {
        return None;
    }
    Some(((to - from) as u64).div_ceil(interval_hint as u64))
}

fn gap_value(series: &Series, from: i64, to: i64) -> GapAwareValue {
    let agg = series.scan_aggregate(from, to);
    let quarantined = series.quarantined_in(from, to);
    match expected_samples(series.meta().interval_hint, from, to) {
        Some(expected) => {
            let coverage = (agg.count as f64 / expected as f64).clamp(0.0, 1.0);
            GapAwareValue { agg, expected, coverage, quarantined }
        }
        None => {
            let expected = agg.count;
            GapAwareValue { agg, expected, coverage: 1.0, quarantined }
        }
    }
}

/// Gap-aware aggregate of one series over `[from, to)`: moments over the
/// present samples plus coverage against the series' cadence hint and the
/// quarantined count. `None` for an unknown id. Reads through the
/// published view when fresh (quarantines bump the store generation, so a
/// fresh view's quality mask is current), shard lock otherwise.
pub fn store_gap_aggregate(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
) -> Option<GapAwareValue> {
    store.with_series_read(id, |s| gap_value(s, from, to))
}

/// Gap-aware aligned windows of width `step` covering `[from, to)`.
/// `None` for an unknown id.
///
/// # Panics
/// Panics if `step <= 0` or `from > to`.
pub fn store_gap_windows(
    store: &TsdbStore,
    id: SeriesId,
    from: i64,
    to: i64,
    step: i64,
) -> Option<Vec<GapWindow>> {
    assert!(step > 0, "window step must be positive");
    assert!(from <= to, "window range reversed");
    store.with_series_read(id, |s| {
        let mut out = Vec::new();
        let mut start = from;
        while start < to {
            let end = (start + step).min(to);
            let v = gap_value(s, start, end);
            out.push(GapWindow {
                start,
                mean: v.agg.mean(),
                count: v.agg.count,
                expected: v.expected,
                coverage: v.coverage,
                quarantined: v.quarantined,
            });
            start = end;
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesMeta;

    fn store_with(name: &str) -> (TsdbStore, SeriesId) {
        let store = TsdbStore::default();
        let id = store.register(SeriesMeta {
            name: name.into(),
            unit: "kW".into(),
            interval_hint: 60,
        });
        (store, id)
    }

    #[test]
    fn out_of_range_and_nonfinite_are_quarantined() {
        let (store, id) = store_with("m");
        let mut san = Sanitizer::new(SanitizeConfig::default());
        assert_eq!(san.ingest(&store, id, 0, 400.0), Some(SampleFate::Stored));
        assert_eq!(
            san.ingest(&store, id, 60, 4_000.0),
            Some(SampleFate::Quarantined(QuarantineReason::OutOfRange))
        );
        assert_eq!(
            san.ingest(&store, id, 120, f64::NAN),
            Some(SampleFate::Quarantined(QuarantineReason::OutOfRange))
        );
        assert_eq!(
            san.ingest(&store, id, 180, -1.0),
            Some(SampleFate::Quarantined(QuarantineReason::OutOfRange))
        );
        assert_eq!(san.ingest(&store, id, 240, 401.0), Some(SampleFate::Stored));
        assert_eq!(store.with_series(id, Series::len).unwrap(), 2);
        assert_eq!(store.with_series(id, |s| s.quarantined().to_vec()).unwrap().len(), 3);
        assert_eq!(san.stats().out_of_range, 3);
        // The quarantined values never entered the aggregates.
        let agg = store.with_series(id, |s| *s.total_aggregate()).unwrap();
        assert_eq!(agg.count, 2);
        assert_eq!(agg.max, 401.0);
    }

    #[test]
    fn stuck_runs_quarantine_after_the_threshold() {
        let (store, id) = store_with("m");
        let mut san =
            Sanitizer::new(SanitizeConfig { max_stuck_run: 3, ..SanitizeConfig::default() });
        let mut stored = 0;
        for i in 0..10i64 {
            if san.ingest(&store, id, i * 60, 123.456) == Some(SampleFate::Stored) {
                stored += 1;
            }
        }
        // First 3 identical samples pass, the rest are stuck.
        assert_eq!(stored, 3);
        assert_eq!(san.stats().stuck, 7);
        // A changed value resets the run.
        assert_eq!(san.ingest(&store, id, 700, 124.0), Some(SampleFate::Stored));
        assert_eq!(san.ingest(&store, id, 760, 124.0), Some(SampleFate::Stored));
    }

    #[test]
    fn non_monotonic_is_quarantined_not_lost() {
        let (store, id) = store_with("m");
        let mut san = Sanitizer::new(SanitizeConfig::default());
        san.ingest(&store, id, 100, 400.0);
        assert_eq!(
            san.ingest(&store, id, 40, 410.0),
            Some(SampleFate::Quarantined(QuarantineReason::NonMonotonic))
        );
        let q = store.with_series(id, |s| s.quarantined().to_vec()).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].reason, QuarantineReason::NonMonotonic);
        assert_eq!(q[0].ts, 40);
    }

    #[test]
    fn unknown_series_returns_none() {
        let store = TsdbStore::default();
        let mut san = Sanitizer::new(SanitizeConfig::default());
        assert_eq!(san.ingest(&store, SeriesId(9), 0, 1.0), None);
    }

    #[test]
    fn gap_aware_aggregate_reports_coverage() {
        let (store, id) = store_with("m");
        // 60-second cadence; store every other sample over 20 minutes.
        for i in 0..20i64 {
            if i % 2 == 0 {
                store.append(id, i * 60, 100.0 + i as f64);
            }
        }
        let v = store_gap_aggregate(&store, id, 0, 1_200).unwrap();
        assert_eq!(v.expected, 20);
        assert_eq!(v.agg.count, 10);
        assert!((v.coverage - 0.5).abs() < 1e-12);
        assert_eq!(v.quarantined, 0);
        // Full coverage over the even minutes only.
        let v = store_gap_aggregate(&store, id, 0, 60).unwrap();
        assert_eq!(v.expected, 1);
        assert!((v.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gap_windows_match_brute_force() {
        let (store, id) = store_with("m");
        let mut san = Sanitizer::new(SanitizeConfig::default());
        let mut kept: Vec<(i64, f64)> = Vec::new();
        for i in 0..240i64 {
            // A third of the samples spike out of range.
            let v = if i % 3 == 2 { 9_999.0 } else { 100.0 + (i % 7) as f64 };
            if san.ingest(&store, id, i * 60, v) == Some(SampleFate::Stored) {
                kept.push((i * 60, v));
            }
        }
        let windows = store_gap_windows(&store, id, 0, 240 * 60, 3_600).unwrap();
        assert_eq!(windows.len(), 4);
        for w in &windows {
            let slice: Vec<f64> = kept
                .iter()
                .filter(|&&(t, _)| t >= w.start && t < w.start + 3_600)
                .map(|&(_, v)| v)
                .collect();
            assert_eq!(w.count, slice.len() as u64);
            assert_eq!(w.expected, 60);
            let brute = slice.iter().sum::<f64>() / slice.len() as f64;
            assert!((w.mean - brute).abs() < 1e-9);
            assert!((w.coverage - slice.len() as f64 / 60.0).abs() < 1e-12);
            assert_eq!(w.quarantined, 20, "a third of 60 samples quarantined");
        }
    }
}
