//! MSB-first bit-level reader/writer over [`bytes`] buffers.
//!
//! The Gorilla-style codec in [`crate::chunk`] appends variable-width
//! fields; this module is the only place that touches individual bits, so
//! the codec itself stays written in terms of `(value, width)` pairs.

use bytes::{BufMut, Bytes, BytesMut};

/// Append-only bit writer; bits fill each byte from the most-significant
/// end so the byte stream is readable in write order.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Partially filled last byte (always left-aligned).
    current: u8,
    /// Number of valid bits in `current` (0..8).
    filled: u8,
    /// Total bits written.
    len_bits: u64,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer with byte capacity pre-reserved.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter { buf: BytesMut::with_capacity(bytes), ..Self::default() }
    }

    /// Total bits written so far.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Append a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.current |= u8::from(bit) << (7 - self.filled);
        self.filled += 1;
        self.len_bits += 1;
        if self.filled == 8 {
            self.buf.put_u8(self.current);
            self.current = 0;
            self.filled = 0;
        }
    }

    /// Append the low `width` bits of `value`, most-significant first.
    ///
    /// # Panics
    /// Panics if `width > 64`.
    pub fn push_bits(&mut self, value: u64, width: u8) {
        assert!(width <= 64, "width {width} > 64");
        for i in (0..width).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Copy of the bytes written so far (including the partial last byte,
    /// zero-padded) plus the exact bit length. Used to decode a chunk that
    /// is still accepting appends.
    pub fn snapshot(&self) -> (Vec<u8>, u64) {
        let mut bytes = self.buf.to_vec();
        if self.filled > 0 {
            bytes.push(self.current);
        }
        (bytes, self.len_bits)
    }

    /// Finish, zero-padding the final partial byte, and freeze the buffer.
    /// Returns the bytes and the exact bit length (so readers know where
    /// the padding starts).
    pub fn finish(mut self) -> (Bytes, u64) {
        if self.filled > 0 {
            self.buf.put_u8(self.current);
        }
        (self.buf.freeze(), self.len_bits)
    }
}

/// Sequential reader over a bit stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next bit to read.
    pos: u64,
    /// One past the last valid bit.
    end: u64,
}

impl<'a> BitReader<'a> {
    /// Read `len_bits` bits from `data`.
    ///
    /// # Panics
    /// Panics if `data` is shorter than `len_bits` requires.
    pub fn new(data: &'a [u8], len_bits: u64) -> Self {
        assert!(
            (data.len() as u64) * 8 >= len_bits,
            "buffer of {} bytes cannot hold {len_bits} bits",
            data.len()
        );
        BitReader { data, pos: 0, end: len_bits }
    }

    /// Bits left to read.
    pub fn remaining_bits(&self) -> u64 {
        self.end - self.pos
    }

    /// Read one bit.
    ///
    /// # Panics
    /// Panics on reading past the end (indicates a corrupt stream).
    pub fn read_bit(&mut self) -> bool {
        assert!(self.pos < self.end, "bit stream exhausted");
        let byte = self.data[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8) as u8)) & 1 == 1;
        self.pos += 1;
        bit
    }

    /// Read `width` bits as the low bits of a `u64`.
    ///
    /// # Panics
    /// Panics if `width > 64` or the stream is exhausted.
    pub fn read_bits(&mut self, width: u8) -> u64 {
        assert!(width <= 64, "width {width} > 64");
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.read_bit());
        }
        v
    }
}

/// Zig-zag encode a signed delta so small magnitudes use few bits.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bits(0b1011, 4);
        w.push_bits(u64::MAX, 64);
        w.push_bits(0, 7);
        w.push_bits(0x5A5A, 16);
        let (bytes, len) = w.finish();
        assert_eq!(len, 1 + 4 + 64 + 7 + 16);

        let mut r = BitReader::new(&bytes, len);
        assert!(r.read_bit());
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.read_bits(7), 0);
        assert_eq!(r.read_bits(16), 0x5A5A);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, 60, -60, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v, "zigzag broke {v}");
        }
        // Small magnitudes stay small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn reading_past_end_panics() {
        let mut w = BitWriter::new();
        w.push_bits(3, 2);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        r.read_bits(3);
    }
}
