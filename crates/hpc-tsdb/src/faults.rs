//! Deterministic fault injection for persistence testing.
//!
//! Durability claims are only as good as the failures they were tested
//! against. This module provides the three failure modes the recovery test
//! suite (`tests/tsdb_recovery.rs`) drives:
//!
//! * **truncation** — [`truncate_file`]: the tail of a file vanishes, as
//!   after a crash before the data reached disk;
//! * **bit corruption** — [`flip_bit`]: a stored byte decays, as from a
//!   medium error or a buggy layer below;
//! * **mid-write crash** — [`CrashWriter`]: the process dies partway
//!   through writing, leaving a prefix of the intended bytes.
//!
//! Injection sites are chosen with [`DetRng`], a tiny deterministic
//! generator, so every failing case is reproducible from its seed.

use std::io::{self, Write};
use std::path::Path;

/// Truncate the file at `path` to its first `keep` bytes (no-op when the
/// file is already shorter).
pub fn truncate_file(path: &Path, keep: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    let len = f.metadata()?.len();
    if keep < len {
        f.set_len(keep)?;
        f.sync_all()?;
    }
    Ok(())
}

/// Flip bit `bit` (0–7) of the byte at `offset` in the file at `path`.
///
/// # Panics
/// Panics if `offset` is past the end of the file or `bit > 7`.
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
    assert!(bit < 8, "bit index {bit} out of range");
    let mut data = std::fs::read(path)?;
    let i = usize::try_from(offset).expect("offset fits usize");
    assert!(i < data.len(), "offset {offset} past end of {} -byte file", data.len());
    data[i] ^= 1 << bit;
    std::fs::write(path, &data)?;
    Ok(())
}

/// A [`Write`] adaptor that dies after passing through a byte budget —
/// the classic mid-write crash. Writes up to `budget` bytes to the inner
/// writer, then fails every further write with an `Other` error, leaving
/// the inner writer holding exactly the prefix a crashed process would
/// have produced.
#[derive(Debug)]
pub struct CrashWriter<W: Write> {
    inner: W,
    remaining: usize,
}

impl<W: Write> CrashWriter<W> {
    /// Crash after `budget` bytes have been written.
    pub fn new(inner: W, budget: usize) -> Self {
        CrashWriter { inner, remaining: budget }
    }

    /// The inner writer (holding the pre-crash prefix).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CrashWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected crash: write budget exhausted"));
        }
        let n = buf.len().min(self.remaining);
        let written = self.inner.write(&buf[..n])?;
        self.remaining -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Produce the bytes a snapshot interrupted after `budget` bytes would
/// leave on disk: runs [`crate::TsdbStore::snapshot_to`] into a
/// [`CrashWriter`] and returns whatever made it through (the snapshot
/// error, if the budget was hit, is intentionally swallowed — the caller
/// is constructing a crash artefact, not taking a snapshot).
pub fn partial_snapshot(store: &crate::TsdbStore, budget: usize) -> Vec<u8> {
    let mut w = CrashWriter::new(Vec::new(), budget);
    let _ = store.snapshot_to(&mut w);
    w.into_inner()
}

/// Minimal deterministic RNG (SplitMix64) for choosing injection sites.
/// Not for statistics — for reproducible fault schedules.
#[derive(Debug, Clone)]
pub struct DetRng(u64);

impl DetRng {
    /// Seeded generator; equal seeds give equal schedules.
    pub fn new(seed: u64) -> Self {
        DetRng(seed)
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range({lo}, {hi})");
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `pct`/100 (clamped to 100). One draw is
    /// consumed either way, so interleaved decisions stay aligned across
    /// plans that differ only in probabilities.
    pub fn chance_pct(&mut self, pct: u64) -> bool {
        self.below(100) < pct.min(100)
    }

    /// An independent generator derived from this one's seed and `stream`:
    /// equal `(seed, stream)` pairs give equal sequences, distinct streams
    /// are decorrelated. Lets one plan seed many per-connection or
    /// per-attempt generators without sharing mutable state.
    pub fn derive(seed: u64, stream: u64) -> DetRng {
        let mut rng = DetRng::new(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        rng.next_u64(); // decouple from the raw seed value
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_writer_passes_exactly_the_budget() {
        let mut w = CrashWriter::new(Vec::new(), 10);
        assert_eq!(w.write(b"hello").unwrap(), 5);
        assert_eq!(w.write(b"worlds!").unwrap(), 5); // clipped at the budget
        assert!(w.write(b"x").is_err());
        assert_eq!(w.into_inner(), b"helloworld");
    }

    #[test]
    fn det_rng_is_deterministic_and_varied() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.below(1000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.below(1000)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().collect::<std::collections::HashSet<_>>().len() > 8);
    }

    #[test]
    fn file_faults_apply() {
        let path =
            std::env::temp_dir().join(format!("tsdb-faults-test-{}", std::process::id()));
        std::fs::write(&path, [0u8; 32]).unwrap();
        flip_bit(&path, 3, 7).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[3], 0x80);
        truncate_file(&path, 5).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 5);
        truncate_file(&path, 500).unwrap(); // longer than the file: no-op
        assert_eq!(std::fs::read(&path).unwrap().len(), 5);
        std::fs::remove_file(&path).unwrap();
    }
}
