//! A single series: an append-only sequence of compressed chunks (sealed +
//! one active) with a cascade of rollup levels maintained on ingest.

use crate::chunk::{Chunk, ChunkBuilder, ColumnBlock, Zone};
use crate::quality::QuarantinedSample;
use crate::rollup::{Aggregate, RollupLevel, HOUR, MINUTE};

/// Samples per chunk before sealing. 512 one-minute samples ≈ 8.5 hours
/// per chunk, giving scans good locality while bounding the re-decode
/// cost of the active chunk.
pub const CHUNK_SAMPLES: u32 = 512;

/// Immutable description of a series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesMeta {
    /// Dotted path, e.g. `"facility"` or `"cabinet.17"`.
    pub name: String,
    /// Unit label, e.g. `"kW"`.
    pub unit: String,
    /// Expected cadence in seconds (a hint for readers; irregular appends
    /// are still accepted and encoded).
    pub interval_hint: i64,
}

/// One time series: compressed storage plus raw → 1-min → 1-h rollups.
#[derive(Debug, Clone)]
pub struct Series {
    meta: SeriesMeta,
    sealed: Vec<Chunk>,
    active: ChunkBuilder,
    minutes: RollupLevel,
    hours: RollupLevel,
    total: Aggregate,
    chunk_samples: u32,
    /// Quality mask: samples refused by sanitisation, in arrival order.
    /// Never folded into chunks, rollups or `total` — exclusion from every
    /// aggregate is by construction. In-memory diagnostic state; not part
    /// of the snapshot format.
    quarantined: Vec<QuarantinedSample>,
    /// Monotonic count of mutations (appends, quarantines, compactions).
    /// [`crate::ReadView`] publication compares it against the previous
    /// view's stamp to reuse the frozen `Arc<Series>` of an unchanged
    /// series instead of re-cloning it. Not persisted; a recovered series
    /// restarts at zero, which only costs one fresh clone.
    mutations: u64,
}

impl Series {
    /// An empty series.
    pub fn new(meta: SeriesMeta) -> Self {
        Series {
            meta,
            sealed: Vec::new(),
            active: ChunkBuilder::new(),
            minutes: RollupLevel::new(MINUTE),
            hours: RollupLevel::new(HOUR),
            total: Aggregate::new(),
            chunk_samples: CHUNK_SAMPLES,
            quarantined: Vec::new(),
            mutations: 0,
        }
    }

    /// Series description.
    pub fn meta(&self) -> &SeriesMeta {
        &self.meta
    }

    /// Total samples appended.
    pub fn len(&self) -> u64 {
        self.total.count
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.total.count == 0
    }

    /// Timestamp of the most recent sample.
    pub fn last_ts(&self) -> Option<i64> {
        if !self.active.is_empty() {
            Some(self.active.last_ts())
        } else {
            self.sealed.last().map(Chunk::last_ts)
        }
    }

    /// Timestamp of the first sample.
    pub fn first_ts(&self) -> Option<i64> {
        if let Some(c) = self.sealed.first() {
            Some(c.first_ts())
        } else if !self.active.is_empty() {
            Some(self.active.first_ts())
        } else {
            None
        }
    }

    /// Aggregate over every sample ever appended.
    pub fn total_aggregate(&self) -> &Aggregate {
        &self.total
    }

    /// Compressed bytes held (sealed chunks + active chunk).
    pub fn size_bytes(&self) -> usize {
        self.sealed.iter().map(Chunk::size_bytes).sum::<usize>() + self.active.size_bytes()
    }

    /// Sealed chunks in time order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.sealed
    }

    /// The 1-minute rollup level.
    pub fn minutes(&self) -> &RollupLevel {
        &self.minutes
    }

    /// The 1-hour rollup level.
    pub fn hours(&self) -> &RollupLevel {
        &self.hours
    }

    /// Decode the samples of the active (unsealed) chunk — the mutable
    /// tail a snapshot must persist as raw samples, since only sealed
    /// chunks are immutable byte blocks.
    pub fn active_tail(&self) -> Vec<(i64, f64)> {
        self.active.decode()
    }

    /// Reassemble a series from persisted parts: sealed chunks verbatim,
    /// the active tail as raw samples (re-encoded through the deterministic
    /// codec, so the rebuilt builder is bit-identical to the one that was
    /// snapshotted), and the rollup/total state as recorded — the tail
    /// samples are **not** re-folded into rollups, because the persisted
    /// rollup state already includes them.
    ///
    /// Snapshot recovery verifies a CRC over the serialised bytes before
    /// calling this; no structural validation happens here.
    ///
    /// # Panics
    /// Panics if the active-tail timestamps are not strictly increasing.
    pub fn from_parts(
        meta: SeriesMeta,
        sealed: Vec<Chunk>,
        active_tail: &[(i64, f64)],
        minutes: RollupLevel,
        hours: RollupLevel,
        total: Aggregate,
    ) -> Self {
        let mut active = ChunkBuilder::new();
        for &(ts, v) in active_tail {
            active.push(ts, v);
        }
        Series {
            meta,
            sealed,
            active,
            minutes,
            hours,
            total,
            chunk_samples: CHUNK_SAMPLES,
            quarantined: Vec::new(),
            mutations: 0,
        }
    }

    /// Mutations applied to this series so far (appends, quarantines,
    /// compactions). Used by view publication to detect unchanged series.
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// Record a sample refused by sanitisation into the quality mask. The
    /// sample is *not* stored and contributes to no aggregate.
    pub fn quarantine(&mut self, sample: QuarantinedSample) {
        self.mutations += 1;
        self.quarantined.push(sample);
    }

    /// The quality mask: every quarantined sample, in arrival order.
    pub fn quarantined(&self) -> &[QuarantinedSample] {
        &self.quarantined
    }

    /// Quarantined samples so far.
    pub fn quarantine_count(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// Quarantined samples whose reported timestamp falls in `[from, to)`.
    pub fn quarantined_in(&self, from: i64, to: i64) -> u64 {
        self.quarantined.iter().filter(|q| q.ts >= from && q.ts < to).count() as u64
    }

    /// Append one sample.
    ///
    /// # Panics
    /// Panics if `ts` is not strictly after the last appended timestamp.
    pub fn append(&mut self, ts: i64, value: f64) {
        self.mutations += 1;
        if self.active.len() >= self.chunk_samples {
            let full = std::mem::take(&mut self.active);
            self.sealed.push(full.seal());
        }
        self.active.push(ts, value);
        self.total.push(value);
        if let Some(done) = self.minutes.push(ts, value) {
            self.hours.fold(done.start, done.agg);
        }
    }

    /// Decode all samples with `from <= ts < to`, in time order.
    pub fn scan(&self, from: i64, to: i64) -> Vec<(i64, f64)> {
        let mut out = Vec::new();
        for chunk in &self.sealed {
            if chunk.overlaps(from, to) {
                out.extend(
                    chunk.decode().into_iter().filter(|&(t, _)| t >= from && t < to),
                );
            }
        }
        out.extend(self.active_samples_in(from, to));
        out
    }

    /// Decode the samples of the **active** (unsealed) chunk that fall in
    /// `[from, to)`. The active chunk is the only mutable storage in a
    /// series, so snapshot-based readers copy it out under the shard lock
    /// and treat the sealed chunks as immutable afterwards.
    pub fn active_samples_in(&self, from: i64, to: i64) -> Vec<(i64, f64)> {
        if self.active.is_empty()
            || self.active.first_ts() >= to
            || self.active.last_ts() < from
        {
            return Vec::new();
        }
        self.active.decode().into_iter().filter(|&(t, _)| t >= from && t < to).collect()
    }

    /// Aggregate of all samples in `[from, to)` computed by raw scan,
    /// using columnar decode and zone maps where available.
    ///
    /// For a zone-mapped (compacted) chunk the fold walks the zones in
    /// order, merging the pre-computed aggregate of every zone fully
    /// inside the window and pushing the in-window values of partial
    /// zones — exactly the chunk-level sequence the pre-compaction store
    /// performed over the source chunks, so answers stay bit-identical
    /// (see [`Self::scan_aggregate_reference`]).
    pub fn scan_aggregate(&self, from: i64, to: i64) -> Aggregate {
        let mut agg = Aggregate::new();
        let mut fetch = |c: &Chunk| std::sync::Arc::new(c.decode_columns());
        for chunk in &self.sealed {
            if !chunk.overlaps(from, to) {
                continue;
            }
            fold_chunk_aggregate(chunk, from, to, &mut fetch, &mut agg);
        }
        for (_, v) in self.active_samples_in(from, to) {
            agg.push(v);
        }
        agg
    }

    /// The pre-columnar scalar reference kernel: sample-by-sample row
    /// decode with a per-sample window filter, no zone maps, no columnar
    /// blocks. Kept verbatim as (a) the bit-identity oracle the columnar
    /// path is property-tested against and (b) the in-run "before" timing
    /// baseline for the query benchmark.
    pub fn scan_aggregate_reference(&self, from: i64, to: i64) -> Aggregate {
        let mut agg = Aggregate::new();
        // Whole-chunk fast path: chunks fully inside the window contribute
        // their pre-computed aggregate without decoding.
        for chunk in &self.sealed {
            if !chunk.overlaps(from, to) {
                continue;
            }
            if chunk.contained_in(from, to) {
                agg.merge(chunk.aggregate());
            } else {
                for (t, v) in chunk.decode() {
                    if t >= from && t < to {
                        agg.push(v);
                    }
                }
            }
        }
        for (_, v) in self.active_samples_in(from, to) {
            agg.push(v);
        }
        agg
    }

    /// Number of samples in the active (unsealed) chunk.
    pub fn active_len(&self) -> u32 {
        self.active.len()
    }

    /// Time bounds `(first_ts, last_ts)` of the active chunk, `None` when
    /// empty. Lets cost estimators reason about the mutable tail without
    /// decoding it.
    pub fn active_bounds(&self) -> Option<(i64, i64)> {
        (!self.active.is_empty()).then(|| (self.active.first_ts(), self.active.last_ts()))
    }

    /// Rewrite runs of small sealed chunks into large compacted chunks
    /// carrying block-level zone maps, and return how many source chunks
    /// were rewritten.
    ///
    /// Consecutive zone-less sealed chunks are grouped greedily into runs
    /// of at most `target_samples` samples; each run of two or more
    /// chunks is re-encoded through one [`ChunkBuilder`] (the codec is
    /// deterministic, so the payload is exactly what a single builder
    /// would have produced) and annotated with one [`Zone`] per source
    /// chunk, the zone's aggregate carried over verbatim. Queries over
    /// the compacted series therefore answer bit-identically to the
    /// pre-compaction series while touching far fewer chunk headers, and
    /// zone-covered windows skip decode entirely. Already-compacted
    /// chunks are left alone. The active chunk and rollups are untouched.
    pub fn compact(&mut self, target_samples: u32) -> u32 {
        let mut out: Vec<Chunk> = Vec::with_capacity(self.sealed.len());
        let mut run: Vec<Chunk> = Vec::new();
        let mut run_samples: u32 = 0;
        let mut rewritten: u32 = 0;

        fn flush(run: &mut Vec<Chunk>, out: &mut Vec<Chunk>, rewritten: &mut u32) {
            if run.len() < 2 {
                out.append(run);
                return;
            }
            let mut b = ChunkBuilder::new();
            let mut zones = Vec::with_capacity(run.len());
            for c in run.drain(..) {
                for (t, v) in c.decode() {
                    b.push(t, v);
                }
                zones.push(Zone {
                    first_ts: c.first_ts(),
                    last_ts: c.last_ts(),
                    agg: *c.aggregate(),
                });
                *rewritten += 1;
            }
            out.push(b.seal().with_zones(zones));
        }

        for chunk in self.sealed.drain(..) {
            let fits = run_samples.saturating_add(chunk.len()) <= target_samples;
            if chunk.zones().is_some() || chunk.len() > target_samples {
                // Already compacted (or oversized): ends any open run and
                // passes through untouched.
                flush(&mut run, &mut out, &mut rewritten);
                run_samples = 0;
                out.push(chunk);
            } else if fits {
                run_samples += chunk.len();
                run.push(chunk);
            } else {
                flush(&mut run, &mut out, &mut rewritten);
                run_samples = chunk.len();
                run.push(chunk);
            }
        }
        flush(&mut run, &mut out, &mut rewritten);
        self.sealed = out;
        if rewritten > 0 {
            self.mutations += 1;
        }
        rewritten
    }
}

/// Fold one sealed chunk's contribution to `[from, to)` into `agg`, zone
/// maps honoured, decode deferred until a partial zone or partial
/// zone-less chunk forces it. `fetch` supplies the decoded columns (the
/// query layer routes it through the store's chunk cache; the series
/// level decodes directly) and is called **at most once** per chunk.
/// Returns the number of blocks pruned — zones (or, for a zone-less
/// chunk, the whole chunk as one block) answered without touching sample
/// data, either skipped outright or served from their pre-computed
/// aggregate.
pub(crate) fn fold_chunk_aggregate(
    chunk: &Chunk,
    from: i64,
    to: i64,
    fetch: &mut dyn FnMut(&Chunk) -> std::sync::Arc<ColumnBlock>,
    agg: &mut Aggregate,
) -> u64 {
    let mut block: Option<std::sync::Arc<ColumnBlock>> = None;
    let mut pruned = 0u64;
    // Push the in-window values of `[lo, hi)` from the chunk's columns.
    let mut push_range = |lo: i64, hi: i64, agg: &mut Aggregate| {
        let cols = block.get_or_insert_with(|| fetch(chunk));
        let r = cols.range(lo, hi);
        for &v in &cols.values()[r] {
            agg.push(v);
        }
    };
    match chunk.zones() {
        None => {
            if chunk.contained_in(from, to) {
                agg.merge(chunk.aggregate());
                pruned += 1;
            } else {
                push_range(from, to, agg);
            }
        }
        Some(zones) => {
            for z in zones {
                if !z.overlaps(from, to) {
                    pruned += 1;
                } else if z.contained_in(from, to) {
                    // Same bits as merging the source chunk's aggregate:
                    // the zone carries it verbatim.
                    agg.merge(&z.agg);
                    pruned += 1;
                } else {
                    // Partial zone: push exactly the samples the source
                    // chunk's decode-filter would have pushed.
                    push_range(z.first_ts.max(from), z.last_ts.saturating_add(1).min(to), agg);
                }
            }
        }
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> SeriesMeta {
        SeriesMeta { name: "test".into(), unit: "kW".into(), interval_hint: 60 }
    }

    #[test]
    fn append_spanning_many_chunks() {
        let mut s = Series::new(meta());
        let n = CHUNK_SAMPLES * 3 + 17;
        for i in 0..n {
            s.append(i64::from(i) * 60, f64::from(i % 100));
        }
        assert_eq!(s.len(), u64::from(n));
        assert_eq!(s.chunks().len(), 3);
        assert_eq!(s.first_ts(), Some(0));
        assert_eq!(s.last_ts(), Some(i64::from(n - 1) * 60));

        let all = s.scan(i64::MIN, i64::MAX);
        assert_eq!(all.len(), n as usize);
        for (i, &(t, v)) in all.iter().enumerate() {
            assert_eq!(t, i as i64 * 60);
            assert_eq!(v, (i % 100) as f64);
        }
    }

    #[test]
    fn scan_window_is_half_open() {
        let mut s = Series::new(meta());
        for i in 0..10 {
            s.append(i64::from(i) * 60, f64::from(i));
        }
        let w = s.scan(60, 240);
        assert_eq!(w.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![60, 120, 180]);
    }

    #[test]
    fn scan_aggregate_matches_naive() {
        let mut s = Series::new(meta());
        let n = CHUNK_SAMPLES * 2 + 100;
        let vals: Vec<f64> = (0..n).map(|i| (f64::from(i) * 0.7).sin() * 50.0 + 400.0).collect();
        for (i, &v) in vals.iter().enumerate() {
            s.append(i as i64 * 60, v);
        }
        // Window crossing the chunk boundary: includes a full middle chunk.
        let from = 100i64 * 60;
        let to = i64::from(CHUNK_SAMPLES * 2 + 50) * 60;
        let agg = s.scan_aggregate(from, to);
        let slice = &vals[100..(CHUNK_SAMPLES * 2 + 50) as usize];
        let naive_mean = slice.iter().sum::<f64>() / slice.len() as f64;
        assert_eq!(agg.count, slice.len() as u64);
        assert!((agg.mean() - naive_mean).abs() < 1e-9);
        assert_eq!(agg.min, slice.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(agg.max, slice.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn compact_rewrites_runs_and_preserves_answers_bit_for_bit() {
        let mut s = Series::new(meta());
        let n = CHUNK_SAMPLES * 5 + 123; // 5 sealed chunks + active tail
        for i in 0..n {
            s.append(i64::from(i) * 60, (f64::from(i) * 0.37).sin() * 900.0 + 2500.0);
        }
        let mut reference = s.clone();
        assert_eq!(s.chunks().len(), 5);
        let rewritten = s.compact(CHUNK_SAMPLES * 4);
        assert_eq!(rewritten, 4, "a 4-chunk run plus a leftover single");
        assert_eq!(s.chunks().len(), 2);
        let zoned = &s.chunks()[0];
        assert_eq!(zoned.len(), CHUNK_SAMPLES * 4);
        assert_eq!(zoned.zones().map(<[_]>::len), Some(4));
        assert!(s.chunks()[1].zones().is_none(), "leftover single stays plain");
        // Zone aggregates are the source chunk aggregates, verbatim.
        for (z, src) in zoned.zones().unwrap().iter().zip(reference.chunks()) {
            assert_eq!(z.first_ts, src.first_ts());
            assert_eq!(z.last_ts, src.last_ts());
            assert_eq!(z.agg.sum.to_bits(), src.aggregate().sum.to_bits());
            assert_eq!(z.agg.count, src.aggregate().count);
        }
        // Every read path agrees with the uncompacted clone, bit for bit:
        // full range, chunk-interior windows, zone-straddling windows,
        // ragged tails into the active chunk.
        let span = i64::from(n) * 60;
        let windows = [
            (i64::MIN, i64::MAX),
            (0, span),
            (37 * 60, 1000 * 60),
            (i64::from(CHUNK_SAMPLES) * 60, i64::from(CHUNK_SAMPLES * 3) * 60),
            (500 * 60 + 30, span - 7919),
            (i64::from(CHUNK_SAMPLES * 5) * 60 - 60, span + 3600),
        ];
        for &(from, to) in &windows {
            let a = s.scan_aggregate(from, to);
            let b = reference.scan_aggregate_reference(from, to);
            assert_eq!(a.count, b.count, "window [{from}, {to})");
            assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "window [{from}, {to})");
            assert_eq!(a.min.to_bits(), b.min.to_bits());
            assert_eq!(a.max.to_bits(), b.max.to_bits());
            assert_eq!(a.m2.to_bits(), b.m2.to_bits(), "window [{from}, {to})");
            assert_eq!(s.scan(from, to), reference.scan(from, to));
        }
        // Compacting again is a no-op: zoned chunks pass through.
        assert_eq!(s.compact(CHUNK_SAMPLES * 4), 0);
        assert_eq!(s.chunks().len(), 2);
        // Appends continue normally after compaction.
        for i in n..n + CHUNK_SAMPLES {
            s.append(i64::from(i) * 60, 1.0);
            reference.append(i64::from(i) * 60, 1.0);
        }
        let a = s.scan_aggregate(i64::MIN, i64::MAX);
        let b = reference.scan_aggregate_reference(i64::MIN, i64::MAX);
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum.to_bits(), b.sum.to_bits());
    }

    #[test]
    fn compact_single_chunk_and_empty_are_no_ops() {
        let mut s = Series::new(meta());
        assert_eq!(s.compact(4096), 0);
        for i in 0..CHUNK_SAMPLES + 10 {
            s.append(i64::from(i) * 60, 1.0);
        }
        assert_eq!(s.chunks().len(), 1);
        assert_eq!(s.compact(4096), 0, "a lone chunk has nothing to merge with");
        assert!(s.chunks()[0].zones().is_none());
    }

    #[test]
    fn rollups_consistent_with_raw_scan() {
        let mut s = Series::new(meta());
        for i in 0..(48 * 60) {
            // Two days of minutely data.
            s.append(i64::from(i) * 60, f64::from(i % 977) * 1.5);
        }
        // Hour 5 via rollups vs raw.
        let from = 5 * 3600;
        let to = 6 * 3600;
        let raw = s.scan_aggregate(from, to);
        let mut rolled = Aggregate::new();
        for b in s.minutes().buckets_in(from, to) {
            rolled.merge(&b.agg);
        }
        assert_eq!(rolled.count, raw.count);
        assert!((rolled.mean() - raw.mean()).abs() < 1e-9);
        assert!((rolled.variance() - raw.variance()).abs() < 1e-6);
        let mut hourly = Aggregate::new();
        for b in s.hours().buckets_in(from, to) {
            hourly.merge(&b.agg);
        }
        assert_eq!(hourly.count, raw.count);
        assert!((hourly.mean() - raw.mean()).abs() < 1e-9);
    }
}
