//! End-to-end crash-recovery fault injection for hpc-tsdb.
//!
//! The contract under test, for every injected fault — truncation, bit
//! flips, crashes mid-snapshot and mid-WAL: recovery either reproduces the
//! surviving data **bit-identically** or fails with a typed
//! [`PersistError`]. It never silently returns wrong data.
//!
//! The suite also property-tests the snapshot round trip over randomly
//! generated store shapes (empty stores, empty series, single samples,
//! chunk-boundary and ragged tails, sealed-rollup-aligned lengths) using
//! the deterministic [`DetRng`] so every failure is reproducible from the
//! case number alone.

use hpc_tsdb::faults::{flip_bit, partial_snapshot, truncate_file, DetRng};
use hpc_tsdb::{
    recover, PersistError, SeriesMeta, StoreConfig, TsdbStore, WalConfig, WalWriter,
};
use std::fs;
use std::path::PathBuf;

/// A unique scratch directory for one test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("tsdb-recovery-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Bit-level reference contents: one `(name, samples-as-bits)` per series.
type Dump = Vec<(String, Vec<(i64, u64)>)>;

/// Full bit-level dump of the named series: `(name, samples-as-bits)`.
fn dump(store: &TsdbStore, names: &[String]) -> Dump {
    names
        .iter()
        .map(|name| {
            let samples = store
                .lookup(name)
                .and_then(|id| store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)))
                .unwrap_or_default();
            let bits = samples.into_iter().map(|(ts, v)| (ts, v.to_bits())).collect();
            (name.clone(), bits)
        })
        .collect()
}

/// One randomly shaped store. Shapes deliberately include the degenerate
/// cases the format must carry: no samples at all, a single sample, a tail
/// that ends exactly on the chunk boundary (empty active chunk), ragged
/// multi-chunk tails, and lengths aligned to sealed rollup buckets.
fn random_store(rng: &mut DetRng) -> (TsdbStore, Vec<String>) {
    let store = TsdbStore::default();
    let n_series = rng.below(6) as usize;
    let mut names = Vec::new();
    for s in 0..n_series {
        let name = format!("series.{s}");
        let interval = [1i64, 60, 900][rng.below(3) as usize];
        let id = store.register(SeriesMeta {
            name: name.clone(),
            unit: "kW".into(),
            interval_hint: interval,
        });
        names.push(name);
        let len = match rng.below(6) {
            0 => 0,
            1 => 1,
            2 => 512,                          // exactly one sealed chunk, empty tail
            3 => 512 * 2 + rng.below(511) as usize + 1, // ragged multi-chunk tail
            4 => (60 / interval.min(60)) as usize * 60, // sealed-rollup-aligned
            _ => rng.below(700) as usize + 2,
        };
        let mut ts = rng.below(1_000_000) as i64;
        for i in 0..len {
            // Values exercise the XOR codec's corner cases: long constant
            // runs, sign flips, tiny and huge magnitudes, negative zero.
            let v = match rng.below(8) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::MIN_POSITIVE,
                3 => -1e300,
                4 => 1e-300,
                5 => 42.0, // repeated often: constant-run path
                _ => (rng.next_u64() >> 12) as f64 * 1e-6 - 2e12,
            };
            store.append(id, ts, v);
            ts += 1 + (interval - 1) * (i as i64 % 2); // half on-grid, half jittered
        }
    }
    // Half the shapes go through a compaction pass, so snapshots carry v2
    // zone-map sections and every fault-injection sweep covers them too.
    if rng.below(2) == 0 {
        store.compact();
    }
    (store, names)
}

#[test]
fn snapshot_roundtrip_property_over_random_shapes() {
    let mut rng = DetRng::new(0x5EED_CA5E);
    for case in 0..32 {
        let (store, names) = random_store(&mut rng);
        let mut buf = Vec::new();
        let stats = store.snapshot_to(&mut buf).expect("snapshot");
        assert_eq!(stats.bytes as usize, buf.len(), "case {case}");
        let back = TsdbStore::open_snapshot(&mut buf.as_slice(), StoreConfig::default())
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(dump(&store, &names), dump(&back, &names), "case {case}");
        assert_eq!(store.total_samples(), back.total_samples(), "case {case}");
        // Aggregates (Welford moments included) survive to the bit too.
        for name in &names {
            let (a, b) = (store.lookup(name).unwrap(), back.lookup(name).unwrap());
            let agg = |st: &TsdbStore, id| st.with_series(id, |s| *s.total_aggregate()).unwrap();
            assert_eq!(agg(&store, a), agg(&back, b), "case {case} series {name}");
        }
    }
}

#[test]
fn compacted_stores_recover_with_zone_maps_intact() {
    let store = TsdbStore::default();
    let id = store.register(SeriesMeta {
        name: "compacted".into(),
        unit: "kW".into(),
        interval_hint: 60,
    });
    for i in 0..(512 * 5 + 100) as i64 {
        store.append(id, i * 60, (i % 97) as f64 * 0.5 - 3.0);
    }
    let stats = store.compact();
    assert!(stats.chunks_compacted > 0);

    let mut buf = Vec::new();
    store.snapshot_to(&mut buf).expect("snapshot");
    let back = TsdbStore::open_snapshot(&mut buf.as_slice(), StoreConfig::default())
        .expect("compacted snapshot opens");
    let rid = back.lookup("compacted").unwrap();
    let zones = |st: &TsdbStore, id| {
        st.with_series(id, |s| {
            s.chunks().iter().map(|c| c.zones().map(<[_]>::len).unwrap_or(0)).collect::<Vec<_>>()
        })
        .unwrap()
    };
    assert_eq!(zones(&store, id), zones(&back, rid), "zone shapes survive recovery");
    assert!(zones(&back, rid).iter().any(|&n| n > 0), "recovered store lost its zones");
    // And a zone-covered aggregate answers identically (to the bit) on
    // both sides without decoding on the recovered store either.
    let agg = |st: &TsdbStore, id| st.with_series(id, |s| s.scan_aggregate(0, 512 * 8 * 60)).unwrap();
    let (a, b) = (agg(&store, id), agg(&back, rid));
    assert_eq!(a.count, b.count);
    assert_eq!(a.sum.to_bits(), b.sum.to_bits());
    assert_eq!(a.m2.to_bits(), b.m2.to_bits());

    // Every truncation of the zone-bearing snapshot is still refused.
    for keep in (0..buf.len()).step_by(127) {
        assert!(
            TsdbStore::open_snapshot(&mut &buf[..keep], StoreConfig::default()).is_err(),
            "zone-bearing snapshot truncated to {keep}/{} opened",
            buf.len()
        );
    }
}

#[test]
fn truncated_snapshot_files_never_open() {
    let scratch = Scratch::new("truncate");
    let mut rng = DetRng::new(7);
    let (store, _) = random_store(&mut rng);
    let full = scratch.path("full.tsnap");
    store.snapshot_to_path(&full).expect("snapshot");
    let len = fs::metadata(&full).unwrap().len();

    let mut cuts: Vec<u64> = (0..len).step_by(41).collect();
    cuts.extend([0, 1, 7, 8, len.saturating_sub(1)]);
    for keep in cuts {
        if keep >= len {
            continue;
        }
        let cut = scratch.path("cut.tsnap");
        fs::copy(&full, &cut).unwrap();
        truncate_file(&cut, keep).unwrap();
        let err = TsdbStore::open_snapshot_path(&cut, StoreConfig::default())
            .err()
            .unwrap_or_else(|| panic!("opened a snapshot truncated to {keep}/{len} bytes"));
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::CorruptBlock { .. }
                    | PersistError::BadMagic
                    | PersistError::Malformed(_)
            ),
            "keep={keep}: unexpected error {err}"
        );
    }
}

#[test]
fn flipped_bits_in_a_snapshot_never_silently_corrupt() {
    let scratch = Scratch::new("bitflip");
    let mut rng = DetRng::new(11);
    let (store, names) = random_store(&mut rng);
    let full = scratch.path("full.tsnap");
    store.snapshot_to_path(&full).expect("snapshot");
    let len = fs::metadata(&full).unwrap().len();
    let reference = dump(&store, &names);

    for trial in 0..64 {
        let offset = rng.below(len);
        let bit = (rng.below(8)) as u8;
        let hurt = scratch.path("hurt.tsnap");
        fs::copy(&full, &hurt).unwrap();
        flip_bit(&hurt, offset, bit).unwrap();
        match TsdbStore::open_snapshot_path(&hurt, StoreConfig::default()) {
            // Every byte sits under the magic check or a block CRC, so a
            // single flipped bit must surface as a typed error...
            Err(_) => {}
            // ...and if a future format ever leaves slack bytes, opening
            // may succeed only with bit-identical contents.
            Ok(back) => assert_eq!(
                reference,
                dump(&back, &names),
                "trial {trial}: flip at {offset}.{bit} silently changed data"
            ),
        }
    }
}

#[test]
fn crash_mid_snapshot_write_is_never_visible() {
    let mut rng = DetRng::new(13);
    let (store, _) = random_store(&mut rng);
    let mut full = Vec::new();
    store.snapshot_to(&mut full).expect("snapshot");

    for budget in (0..full.len()).step_by(53).chain([full.len() - 1]) {
        let prefix = partial_snapshot(&store, budget);
        assert!(prefix.len() <= budget);
        assert!(
            TsdbStore::open_snapshot(&mut prefix.as_slice(), StoreConfig::default()).is_err(),
            "a {budget}-byte crash prefix of a {}-byte snapshot opened",
            full.len()
        );
    }
}

#[test]
fn crash_during_replacement_keeps_the_previous_snapshot() {
    let scratch = Scratch::new("atomic");
    let mut rng = DetRng::new(17);
    let (old, old_names) = random_store(&mut rng);
    let path = scratch.path("store.tsnap");
    old.snapshot_to_path(&path).expect("snapshot");
    let reference = dump(&old, &old_names);

    // A later, bigger snapshot crashes mid-write. snapshot_to_path writes
    // to `<path>.tmp` and renames only on success, so the crash leaves the
    // tmp file behind and the published snapshot untouched.
    let (new, _) = random_store(&mut rng);
    fs::write(path.with_extension("tmp"), partial_snapshot(&new, 100)).unwrap();
    let back = TsdbStore::open_snapshot_path(&path, StoreConfig::default())
        .expect("previous snapshot must still open");
    assert_eq!(reference, dump(&back, &old_names));
}

/// Ingest through the WAL-backed pipeline and return the WAL path plus the
/// reference dump of everything that was written.
fn wal_ingest(scratch: &Scratch, names: &[String]) -> (PathBuf, Dump) {
    let store = TsdbStore::default();
    let ids: Vec<_> = names
        .iter()
        .map(|n| {
            store.register(SeriesMeta { name: n.clone(), unit: "kW".into(), interval_hint: 60 })
        })
        .collect();
    let wal_path = scratch.path("wal.twal");
    // fsync_every=1: every record durable, so truncation points are the
    // only "crashes" left to model.
    let wal = WalWriter::create(&wal_path, WalConfig { fsync_every: 1 }).unwrap();
    let pipeline = store.pipeline_with_wal(wal);
    for batch in 0..40 {
        for (s, &id) in ids.iter().enumerate() {
            let base = batch * 300 + s as i64;
            let samples: Vec<(i64, f64)> =
                (0..5).map(|i| (base + i * 60, (batch * 7 + i) as f64 * 0.25 - 3.0)).collect();
            pipeline.send(id, samples);
        }
    }
    pipeline.close();
    (wal_path, dump(&store, names))
}

#[test]
fn torn_wal_recovers_an_exact_prefix() {
    let scratch = Scratch::new("torn-wal");
    let names: Vec<String> = (0..3).map(|s| format!("node.{s}")).collect();
    let (wal_path, reference) = wal_ingest(&scratch, &names);
    let len = fs::metadata(&wal_path).unwrap().len();

    let mut rng = DetRng::new(19);
    let mut cuts: Vec<u64> = (0..24).map(|_| rng.below(len)).collect();
    cuts.extend([0, 7, 8, 9, len - 1, len]);
    for keep in cuts {
        let cut = scratch.path("cut.twal");
        fs::copy(&wal_path, &cut).unwrap();
        truncate_file(&cut, keep).unwrap();
        let (store, report) =
            recover(None, Some(&cut), StoreConfig::default()).expect("torn WAL still recovers");
        let stats = report.wal.expect("wal replayed");
        // A cut on a record boundary is indistinguishable from a clean
        // shutdown; any other cut must be flagged as torn.
        if keep == len {
            assert!(!stats.torn, "keep={keep}");
        }
        // Everything recovered is an exact bit-level prefix of what was
        // written — per series, because batches apply whole and in order.
        for (name, full_series) in &reference {
            let got = dump(&store, std::slice::from_ref(name)).remove(0).1;
            assert!(got.len() <= full_series.len(), "keep={keep} series {name}");
            assert_eq!(
                got,
                full_series[..got.len()],
                "keep={keep}: series {name} diverged from the written prefix"
            );
        }
    }
}

#[test]
fn flipped_bits_in_a_wal_yield_a_prefix_or_an_error() {
    let scratch = Scratch::new("wal-flip");
    let names: Vec<String> = (0..2).map(|s| format!("node.{s}")).collect();
    let (wal_path, reference) = wal_ingest(&scratch, &names);
    let len = fs::metadata(&wal_path).unwrap().len();

    let mut rng = DetRng::new(23);
    for trial in 0..64 {
        let offset = rng.below(len);
        let bit = rng.below(8) as u8;
        let hurt = scratch.path("hurt.twal");
        fs::copy(&wal_path, &hurt).unwrap();
        flip_bit(&hurt, offset, bit).unwrap();
        let Ok((store, _)) = recover(None, Some(&hurt), StoreConfig::default()) else {
            continue; // a flip inside the magic is a typed error — fine
        };
        for (name, full_series) in &reference {
            let got = dump(&store, std::slice::from_ref(name)).remove(0).1;
            assert!(
                got.len() <= full_series.len() && got == full_series[..got.len()],
                "trial {trial}: flip at {offset}.{bit} corrupted series {name}"
            );
        }
    }
}

#[test]
fn snapshot_plus_wal_crash_recovers_everything_durable() {
    let scratch = Scratch::new("combined");
    let store = TsdbStore::default();
    let meta =
        SeriesMeta { name: "facility".into(), unit: "kW".into(), interval_hint: 60 };
    let id = store.register(meta.clone());

    // Phase 1 lands through a WAL-backed pipeline and is then snapshotted.
    let wal1 = WalWriter::create(&scratch.path("wal1.twal"), WalConfig { fsync_every: 1 }).unwrap();
    let pipeline = store.pipeline_with_wal(wal1);
    for b in 0..10i64 {
        pipeline.send(id, (0..6).map(|i| ((b * 6 + i) * 60, b as f64 + i as f64 * 0.1)).collect());
    }
    pipeline.close();
    let snap_path = scratch.path("store.tsnap");
    store.snapshot_to_path(&snap_path).unwrap();
    let snapshot_len = store.with_series(id, |s| s.len()).unwrap();

    // Phase 2 lands only in a fresh WAL segment — by the time the
    // "machine dies" no second snapshot was taken.
    let wal_path = scratch.path("wal2.twal");
    let mut wal2 = WalWriter::create(&wal_path, WalConfig { fsync_every: 1 }).unwrap();
    wal2.append_register(id, &meta).unwrap();
    for b in 10..20i64 {
        let batch: Vec<(i64, f64)> =
            (0..6).map(|i| ((b * 6 + i) * 60, b as f64 + i as f64 * 0.1)).collect();
        wal2.append_batch(id, &batch).unwrap();
        store.append_batch(id, &batch); // keep the in-memory reference in step
    }
    wal2.sync().unwrap();
    drop(wal2);

    let names = vec!["facility".to_string()];
    let reference = dump(&store, &names);
    drop(store);

    // Tear the phase-2 WAL at assorted points: recovery must still hold
    // every snapshotted sample plus an exact prefix of the logged tail.
    let len = fs::metadata(&wal_path).unwrap().len();
    for keep in [8, len / 3, len / 2, len - 1, len] {
        let cut = scratch.path("cut.twal");
        fs::copy(&wal_path, &cut).unwrap();
        truncate_file(&cut, keep).unwrap();
        let (back, report) =
            recover(Some(&snap_path), Some(&cut), StoreConfig::default()).expect("recovers");
        assert_eq!(report.snapshot_samples, snapshot_len);
        let got = dump(&back, &names).remove(0).1;
        let full = &reference[0].1;
        assert!(got.len() as u64 >= snapshot_len, "keep={keep}: lost snapshotted data");
        assert_eq!(got, full[..got.len()], "keep={keep}: diverged");
        let stats = report.wal.expect("wal replayed");
        assert_eq!(stats.rejected, 0, "keep={keep}");
        if keep == len {
            assert!(!stats.torn, "keep={keep}");
        }
    }
}
