//! Property tests on the batch scheduler: invariants that must survive
//! arbitrary job streams, completion orders and failure injections.

use archer2_repro::sched::BatchScheduler;
use archer2_repro::sim::time::{SimDuration, SimTime};
use archer2_repro::topo::NodeId;
use archer2_repro::workload::{AppModel, Job, JobId, ResearchArea};
use proptest::prelude::*;
use std::collections::HashSet;

const MACHINE: u32 = 32;

#[derive(Debug, Clone)]
enum Action {
    Submit { nodes: u32, walltime_h: u64 },
    CompleteEarliest,
    FailNode(u32),
    /// Repair one specific node — which may never have failed (must no-op).
    RepairNode(u32),
    RepairAll,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (1u32..=MACHINE, 1u64..=24).prop_map(|(nodes, walltime_h)| Action::Submit { nodes, walltime_h }),
        3 => Just(Action::CompleteEarliest),
        // Deliberately overweight fail/repair and reuse a small node range
        // so double-fail and repair-of-healthy interleavings are common.
        2 => (0u32..MACHINE).prop_map(Action::FailNode),
        1 => (0u32..MACHINE).prop_map(Action::RepairNode),
        1 => Just(Action::RepairAll),
    ]
}

fn mk_job(id: u64, nodes: u32, walltime_h: u64, now: SimTime) -> Job {
    Job::new(
        JobId(id),
        AppModel::generic(ResearchArea::Other),
        nodes,
        SimDuration::from_hours(walltime_h),
        SimDuration::from_hours(walltime_h),
        now,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_invariants_hold_under_any_action_sequence(
        actions in proptest::collection::vec(arb_action(), 1..120)
    ) {
        let mut sched = BatchScheduler::new(MACHINE);
        let mut now = SimTime::EPOCH;
        let mut next_id = 0u64;
        let mut offline: HashSet<NodeId> = HashSet::new();

        for action in actions {
            now += SimDuration::from_mins(7);
            match action {
                Action::Submit { nodes, walltime_h } => {
                    next_id += 1;
                    sched.submit(mk_job(next_id, nodes, walltime_h, now));
                }
                Action::CompleteEarliest => {
                    if let Some(id) = sched.running_jobs().min_by_key(|r| r.expected_end).map(|r| r.job.id) {
                        sched.complete(id, now);
                    }
                }
                Action::FailNode(n) => {
                    let node = NodeId(n);
                    let was_offline = sched.is_node_offline(node);
                    let killed = sched.fail_node(node, now);
                    if was_offline {
                        // Double-fail must be a pure no-op.
                        prop_assert_eq!(killed, None, "double fail killed a job");
                    }
                    offline.insert(node);
                }
                Action::RepairNode(n) => {
                    let node = NodeId(n);
                    let repaired = sched.repair_node(node, now);
                    // Repairing a healthy node must no-op; repairing an
                    // offline one must succeed exactly once.
                    prop_assert_eq!(repaired, offline.remove(&node), "repair/no-op mismatch");
                }
                Action::RepairAll => {
                    for node in offline.drain() {
                        prop_assert!(sched.repair_node(node, now));
                    }
                }
            }
            sched.schedule(now);

            // Invariant 1: conservation of nodes.
            let busy = sched.busy_nodes();
            let free = sched.free_nodes();
            let off = sched.offline_nodes();
            prop_assert_eq!(busy + free + off, MACHINE, "node conservation");

            // Invariant 2: running jobs' node sets are disjoint and consistent.
            let mut seen: HashSet<NodeId> = HashSet::new();
            let mut running_nodes = 0u32;
            for r in sched.running_jobs() {
                prop_assert_eq!(r.nodes.len() as u32, r.job.nodes);
                for &n in &r.nodes {
                    prop_assert!(seen.insert(n), "node double-allocated");
                    prop_assert_eq!(sched.job_on_node(n), Some(r.job.id));
                }
                running_nodes += r.job.nodes;
            }
            prop_assert_eq!(running_nodes, busy, "busy count matches running jobs");

            // Invariant 3: offline bookkeeping matches.
            prop_assert_eq!(off as usize, offline.len());

            // Invariant 4: stats are internally consistent.
            let stats = sched.stats();
            prop_assert!(stats.completed <= stats.started);
            prop_assert!(stats.backfilled <= stats.started);
            prop_assert!(stats.abandoned <= stats.killed, "abandon implies a kill");
            prop_assert_eq!(stats.failed(), stats.killed + stats.abandoned);

            // Invariant 5: no lost jobs. Every submission is accounted for
            // as completed, abandoned, running, or still pending.
            prop_assert_eq!(
                stats.submitted,
                stats.completed
                    + stats.abandoned
                    + sched.running_count() as u64
                    + sched.pending_count() as u64,
                "job conservation broken"
            );

            // Invariant 6: allocatable capacity reflects offline nodes.
            prop_assert_eq!(busy + free, MACHINE - off, "offline capacity");
        }
    }

    #[test]
    fn work_conserving_when_jobs_fit(
        sizes in proptest::collection::vec(1u32..=8, 1..20)
    ) {
        // With only small jobs and a fresh machine, the scheduler must pack
        // until no pending job fits (work conservation).
        let mut sched = BatchScheduler::new(MACHINE);
        let now = SimTime::EPOCH;
        for (i, &nodes) in sizes.iter().enumerate() {
            sched.submit(mk_job(i as u64, nodes, 2, now));
        }
        sched.schedule(now);
        // Either everything started, or the free nodes cannot host the
        // smallest pending job... which for EASY means the *head* was
        // reserved: free may exceed small pending sizes only if starting
        // them would delay the head. With uniform walltimes (2 h) backfill
        // candidates that fit always end by the shadow time, so:
        if sched.pending_count() > 0 {
            let smallest_possible = 1u32;
            prop_assert!(
                sched.free_nodes() < smallest_possible
                    || sizes.iter().sum::<u32>() > MACHINE,
                "machine left idle with startable work: {} free, {} pending",
                sched.free_nodes(),
                sched.pending_count()
            );
        }
    }
}
