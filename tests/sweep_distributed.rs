//! Integration tests for the distributed sweep layer: real worker
//! *processes* (re-execs of this test binary), a worker killed mid-shard,
//! and the bit-identity contract against the in-process runner.
//!
//! The coordinator spawns `current_exe()` with a libtest filter selecting
//! [`sweep_worker_entry`], whose only job is to hand control to
//! [`worker_from_env`]. When the `ARCHER2_SWEEP_*` environment is absent
//! (a normal `cargo test` run) the entry test is a no-op pass.

use archer2_repro::core::campaign::CampaignConfig;
use archer2_repro::core::scenarios::ScenarioSpec;
use archer2_repro::core::sweep::{
    derive_seed, resume_distributed, run_distributed, run_in_process, SweepConfig, SweepError,
    SweepManifest, WorkerCommand, WorkerFault,
};
use archer2_repro::prelude::*;
use archer2_repro::workload::{GeneratorConfig, OperatingPoint};
use proptest::prelude::*;
use std::path::PathBuf;

/// Worker-mode trampoline: the coordinator re-execs this test binary with
/// `["sweep_worker_entry", "--exact"]` and the sweep environment set; the
/// worker runs its shard and exits the process with its documented code
/// before libtest gets a say. Without the environment this is a no-op.
#[test]
fn sweep_worker_entry() {
    if let Some(code) = archer2_repro::core::sweep::worker_from_env() {
        std::process::exit(code);
    }
}

fn worker() -> WorkerCommand {
    WorkerCommand::self_exec_with(&["sweep_worker_entry", "--exact"]).expect("current_exe")
}

fn grid(n: usize) -> Vec<ScenarioSpec> {
    let start = SimTime::from_ymd(2022, 3, 1);
    (0..n)
        .map(|i| {
            let config = CampaignConfig {
                seed: derive_seed(2022, i as u64),
                backlog_target: 30,
                generator: GeneratorConfig { max_nodes: 32, ..GeneratorConfig::default() },
                per_cabinet_telemetry: true,
                ..CampaignConfig::default()
            };
            ScenarioSpec::new(
                format!("grid{i:02}"),
                config,
                40,
                start,
                start + SimDuration::from_hours(6),
                OperatingPoint::AFTER_BIOS,
            )
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(shards: usize, workers: usize) -> SweepConfig {
    SweepConfig {
        shards,
        max_workers: workers,
        retry_budget: 2,
        steal_after: None,
        worker: worker(),
        fault: None,
        seed_derivation: "splitmix64(2022, index)".to_string(),
    }
}

#[test]
fn distributed_sweep_is_bit_identical_to_in_process() {
    let specs = grid(5);
    let reference = run_in_process(&specs);
    // Two different shardings must both land on the reference digests.
    for (shards, workers, tag) in [(3usize, 2usize, "a"), (5, 3, "b")] {
        let out = scratch(&format!("match-{tag}"));
        let outcome = run_distributed(specs.clone(), &config(shards, workers), &out)
            .expect("distributed sweep");
        assert_eq!(outcome.merged.store_digest, reference.store_digest, "{shards} shards");
        assert_eq!(outcome.merged.summary_digest, reference.summary_digest, "{shards} shards");
        assert_eq!(outcome.report.resumed_shards, 0);
        let _ = std::fs::remove_dir_all(out);
    }
}

#[test]
fn killed_worker_then_resume_is_bit_identical() {
    let specs = grid(6);
    let reference = run_in_process(&specs);
    let out = scratch("kill");

    // First run: shard 1's worker stalls (letting its siblings finish),
    // then aborts mid-shard leaving a torn snapshot; no retry budget, so
    // the sweep fails typed.
    let mut killed = config(3, 3);
    killed.retry_budget = 0;
    killed.fault = Some(WorkerFault { shard: 1, abort_after: Some(1), stall_ms: Some(1_000) });
    let err = run_distributed(specs.clone(), &killed, &out).expect_err("budget 0 must fail");
    assert!(matches!(err, SweepError::ShardExhausted { shard: 1, .. }), "{err}");

    // Resume from the manifest: completed shards are skipped, the dead one
    // re-runs, and the merged digests equal the in-process reference.
    let outcome = resume_distributed(&out.join("manifest.json"), &config(3, 3), &out)
        .expect("resume after kill");
    assert_eq!(outcome.merged.store_digest, reference.store_digest);
    assert_eq!(outcome.merged.summary_digest, reference.summary_digest);
    assert!(
        outcome.report.resumed_shards >= 2,
        "stalled-then-killed shard lets both siblings finish: {:?}",
        outcome.report
    );
    let _ = std::fs::remove_dir_all(out);
}

#[test]
fn retry_budget_absorbs_a_worker_death() {
    let specs = grid(4);
    let reference = run_in_process(&specs);
    let out = scratch("retry");
    // Shard 0's first attempt aborts immediately; the budget retries it in
    // the same run, so the sweep still succeeds end to end.
    let mut cfg = config(2, 2);
    cfg.retry_budget = 1;
    cfg.fault = Some(WorkerFault { shard: 0, abort_after: Some(0), stall_ms: None });
    let outcome = run_distributed(specs, &cfg, &out).expect("retry must absorb the death");
    assert_eq!(outcome.merged.store_digest, reference.store_digest);
    assert_eq!(outcome.report.retries, 1, "{:?}", outcome.report);
    assert_eq!(outcome.report.failures.len(), 1);
    assert_eq!(outcome.report.failures[0].shard, 0);
    let _ = std::fs::remove_dir_all(out);
}

proptest! {
    /// The manifest partition is a bijection for any grid size and shard
    /// count: every scenario index lands in exactly one shard, shard ids
    /// are dense, and shard sizes are balanced to within one.
    #[test]
    fn partition_is_a_bijection(n in 0usize..40, k in 1usize..12) {
        let manifest = SweepManifest::partition(grid(n), k, "splitmix64(2022, index)");
        prop_assert_eq!(manifest.shards.len(), k);
        let mut seen: Vec<u32> =
            manifest.shards.iter().flat_map(|s| s.scenarios.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u32).collect::<Vec<_>>());
        for shard in &manifest.shards {
            for w in shard.scenarios.windows(2) {
                prop_assert!(w[0] < w[1], "indices strictly ascending");
            }
        }
        let sizes: Vec<usize> = manifest.shards.iter().map(|s| s.scenarios.len()).collect();
        let lo = sizes.iter().min().copied().unwrap_or(0);
        let hi = sizes.iter().max().copied().unwrap_or(0);
        prop_assert!(hi - lo <= 1, "balanced: {:?}", sizes);
    }
}
