//! Property-based tests for the `hpc-tsdb` compression codec and rollup
//! cascade: the Gorilla round trip must be bit-exact for *every* `f64`
//! pattern (NaN payloads, signed zeros, subnormals, infinities) at any
//! timestamp spacing, and rollup-planned aggregates must agree with raw
//! chunk scans on any aligned window.

use archer2_repro::tsdb::query::{aligned_windows, window_aggregate, AggOp};
use archer2_repro::tsdb::{
    fanout_aggregate, store_aggregate, store_gap_aggregate, store_gap_windows, Aggregate,
    SampleFate, SanitizeConfig, Sanitizer, Series, SeriesMeta, TsdbStore,
};
use proptest::prelude::*;

fn meta() -> SeriesMeta {
    SeriesMeta { name: "prop".into(), unit: "kW".into(), interval_hint: 60 }
}

/// Any `f64` bit pattern, with the codec's edge cases oversampled.
fn arb_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => proptest::num::u64::ANY.prop_map(f64::from_bits),
        3 => -5000.0f64..5000.0,
        1 => Just(f64::NAN),
        1 => Just(f64::from_bits(0xFFF8_0000_0000_0001)), // NaN with payload
        1 => Just(0.0),
        1 => Just(-0.0),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::MIN_POSITIVE), // smallest normal
        1 => Just(5e-324),            // subnormal
        1 => Just(f64::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compression_roundtrip_any_bits_any_spacing(
        samples in proptest::collection::vec((1i64..100_000, arb_value()), 0..700),
        start in -1_000_000_000i64..1_000_000_000,
    ) {
        // Irregular, strictly increasing timestamps from random deltas.
        let mut s = Series::new(meta());
        let mut ts = start;
        let mut expected = Vec::with_capacity(samples.len());
        for &(delta, v) in &samples {
            ts += delta;
            s.append(ts, v);
            expected.push((ts, v));
        }
        let decoded = s.scan(i64::MIN, i64::MAX);
        prop_assert_eq!(decoded.len(), expected.len());
        for (&(dt, dv), &(et, ev)) in decoded.iter().zip(&expected) {
            prop_assert_eq!(dt, et, "timestamp diverged");
            prop_assert_eq!(
                dv.to_bits(),
                ev.to_bits(),
                "bit pattern diverged: {:016x} vs {:016x}",
                dv.to_bits(),
                ev.to_bits()
            );
        }
    }

    #[test]
    fn constant_runs_compress_to_a_couple_of_bits_per_sample(
        value in arb_value(),
        n in 1usize..1200,
        interval in 1i64..3600,
    ) {
        // A flat series at a regular cadence — idle nodes, held power caps —
        // costs ~2 bits/sample after the header, whatever the value's bits
        // (XOR of identical patterns is zero, NaN payloads included).
        let mut s = Series::new(meta());
        for i in 0..n {
            s.append(i as i64 * interval, value);
        }
        let decoded = s.scan(i64::MIN, i64::MAX);
        prop_assert_eq!(decoded.len(), n);
        for &(_, v) in &decoded {
            prop_assert_eq!(v.to_bits(), value.to_bits());
        }
        // Generous bound: ~34 bytes of header per chunk + 1 byte/sample.
        let chunks = n / 512 + 1;
        prop_assert!(
            s.size_bytes() <= 40 * chunks + n,
            "{} bytes for {n} constant samples",
            s.size_bytes()
        );
    }

    #[test]
    fn rollup_plans_agree_with_raw_scans_on_any_aligned_window(
        vals in proptest::collection::vec(-5000.0f64..5000.0, 10..2000),
        a in 0usize..2000,
        b in 0usize..2000,
    ) {
        // Minutely cadence so both rollup levels fill.
        let mut s = Series::new(meta());
        for (i, &v) in vals.iter().enumerate() {
            s.append(i as i64 * 60, v);
        }
        // Snap an arbitrary index window to hour alignment: the planner
        // must serve it from rollups, and the answer must match the raw
        // chunk scan moment for moment.
        let span = vals.len() as i64 * 60;
        let from = (a as i64 * 60).min(span) / 3600 * 3600;
        let to = (b as i64 * 60).min(span) / 3600 * 3600;
        let (from, to) = (from.min(to), from.max(to));
        let planned = window_aggregate(&s, from, to);
        let raw = s.scan_aggregate(from, to);
        prop_assert_eq!(planned.count, raw.count);
        if raw.count > 0 {
            prop_assert!((planned.mean() - raw.mean()).abs() < 1e-9);
            prop_assert!((planned.sum - raw.sum).abs() < 1e-6);
            prop_assert_eq!(planned.min, raw.min);
            prop_assert_eq!(planned.max, raw.max);
            prop_assert!((planned.variance() - raw.variance()).abs() < 1e-6 * raw.variance().max(1.0));
        }
    }

    #[test]
    fn rollup_plans_agree_on_ragged_tail_windows(
        vals in proptest::collection::vec(-5000.0f64..5000.0, 10..2000),
        from_units in 0i64..30,
    ) {
        // The planner's sore spot: a grid-aligned `to` rounded UP past the
        // last sample, so the final rollup bucket in range is the one still
        // filling. The hour level only receives minute buckets when they
        // seal, so this exercises the open-minute patch-up.
        let mut s = Series::new(meta());
        for (i, &v) in vals.iter().enumerate() {
            s.append(i as i64 * 60, v);
        }
        let span = vals.len() as i64 * 60;
        for unit in [3600i64, 60] {
            let to = (span + unit - 1) / unit * unit; // ≥ span: past the tail
            let from = (from_units * unit).min(to);
            let planned = window_aggregate(&s, from, to);
            let raw = s.scan_aggregate(from, to);
            prop_assert_eq!(planned.count, raw.count, "unit {}s: count", unit);
            if raw.count > 0 {
                prop_assert!((planned.mean() - raw.mean()).abs() < 1e-9, "unit {}s", unit);
                prop_assert!((planned.sum - raw.sum).abs() < 1e-6);
                prop_assert_eq!(planned.min, raw.min);
                prop_assert_eq!(planned.max, raw.max);
            }
        }
    }

    #[test]
    fn fanout_matches_sequential_store_queries(
        per_series in proptest::collection::vec(
            proptest::collection::vec(-5000.0f64..5000.0, 1..400),
            1..5,
        ),
        a in 0i64..30_000,
        b in 0i64..30_000,
    ) {
        // The parallel fan-out path must answer exactly what a sequential
        // loop over store_aggregate answers, plan included, for both
        // rollup-served and raw-scan (P95) operators.
        let store = TsdbStore::default();
        let ids: Vec<_> = (0..per_series.len())
            .map(|i| {
                store.register(SeriesMeta {
                    name: format!("s{i}"),
                    unit: "kW".into(),
                    interval_hint: 60,
                })
            })
            .collect();
        for (&id, vals) in ids.iter().zip(&per_series) {
            for (i, &v) in vals.iter().enumerate() {
                store.append(id, i as i64 * 60, v);
            }
        }
        let (from, to) = (a.min(b), a.max(b));
        for op in [AggOp::Mean, AggOp::Sum, AggOp::P95] {
            let fan = fanout_aggregate(&store, &ids, from, to, op);
            prop_assert_eq!(fan.len(), ids.len());
            for (&id, f) in ids.iter().zip(&fan) {
                let (sv, sp) = store_aggregate(&store, id, from, to, op).unwrap();
                let (fv, fp) = f.unwrap();
                prop_assert_eq!(sp, fp, "plan diverged for {:?}", op);
                prop_assert!(
                    sv.to_bits() == fv.to_bits() || (sv.is_nan() && fv.is_nan()),
                    "fan-out {} vs sequential {} for {:?}",
                    fv,
                    sv,
                    op
                );
            }
        }
    }

    #[test]
    fn aligned_windows_partition_the_series(
        vals in proptest::collection::vec(-5000.0f64..5000.0, 1..1500),
        step_minutes in 1i64..180,
    ) {
        // Windowing is a partition: counts sum to the total and every
        // window mean stays inside the window's own min/max.
        let mut s = Series::new(meta());
        for (i, &v) in vals.iter().enumerate() {
            s.append(i as i64 * 60, v);
        }
        let span = vals.len() as i64 * 60;
        let windows = aligned_windows(&s, 0, span, step_minutes * 60, AggOp::Mean);
        let total: u64 = windows.iter().map(|w| w.count).sum();
        prop_assert_eq!(total, vals.len() as u64);
        for w in &windows {
            if w.count > 0 {
                let agg = s.scan_aggregate(w.start, w.start + step_minutes * 60);
                prop_assert!(w.value >= agg.min - 1e-9 && w.value <= agg.max + 1e-9);
            }
        }
    }
}

/// Every field of an [`Aggregate`] as raw bits, so "bit-identical" is a
/// single equality over NaN-bearing moments too. NaNs canonicalise to one
/// pattern first: which *payload* survives `a + b` when both inputs carry
/// NaNs is left to the instruction selector (optimised builds may commute
/// the operands), so payload bits are the one thing two correct folds may
/// legitimately disagree on.
fn agg_bits(a: &Aggregate) -> (u64, u64, u64, u64, u64, u64) {
    let canon = |v: f64| if v.is_nan() { f64::NAN.to_bits() } else { v.to_bits() };
    (a.count, canon(a.sum), canon(a.min), canon(a.max), canon(a.mean), canon(a.m2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compacted_series_answers_bit_identically_to_pre_compaction(
        samples in proptest::collection::vec(
            (1i64..200, prop_oneof![
                8 => -5000.0f64..5000.0,
                1 => Just(f64::NAN),
                1 => Just(f64::from_bits(0x7FF8_0000_0000_0042)), // NaN with payload
                1 => Just(-0.0f64),
                1 => Just(f64::INFINITY),
            ]),
            1..2200,
        ),
        windows in proptest::collection::vec((0i64..400_000, 0i64..400_000), 1..6),
    ) {
        // Three-way bit-identity over random shapes, ragged-tail windows
        // and NaN-adjacent values: the columnar fold must equal the
        // retained row-iterator reference, and compaction must change
        // neither aggregates nor row scans in a single bit.
        let mut s = Series::new(meta());
        let mut ts = 0i64;
        for &(delta, v) in &samples {
            ts += delta;
            s.append(ts, v);
        }
        let mut wins: Vec<(i64, i64)> =
            windows.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        wins.push((0, ts + 1)); // ragged tail: just past the last sample
        wins.push((ts / 2, i64::MAX)); // half-open into the far future
        for &(from, to) in &wins {
            prop_assert_eq!(
                agg_bits(&s.scan_aggregate(from, to)),
                agg_bits(&s.scan_aggregate_reference(from, to)),
                "columnar vs reference diverged on [{}, {})", from, to
            );
        }
        let before: Vec<_> = wins.iter().map(|&(f, t)| agg_bits(&s.scan_aggregate(f, t))).collect();
        let rows_before = s.scan(i64::MIN, i64::MAX);
        let rewritten = s.compact(1024);
        if s.chunks().iter().any(|c| c.zones().is_some()) {
            prop_assert!(rewritten > 0);
        }
        for (&(from, to), bits) in wins.iter().zip(&before) {
            prop_assert_eq!(
                &agg_bits(&s.scan_aggregate(from, to)), bits,
                "compaction changed the answer on [{}, {})", from, to
            );
        }
        let rows_after = s.scan(i64::MIN, i64::MAX);
        prop_assert_eq!(rows_before.len(), rows_after.len());
        for (&(t0, v0), &(t1, v1)) in rows_before.iter().zip(&rows_after) {
            prop_assert_eq!(t0, t1);
            prop_assert_eq!(v0.to_bits(), v1.to_bits());
        }
    }

    #[test]
    fn compacted_store_matches_plain_store_for_every_op(
        vals in proptest::collection::vec(-5000.0f64..5000.0, 600..1500),
        a in 0i64..100_000,
        b in 0i64..100_000,
    ) {
        // Identical data through a compacted and an untouched store must
        // answer every operator identically — plan included — on aligned,
        // unaligned and ragged-tail windows alike.
        let plain = TsdbStore::default();
        let compacted = TsdbStore::default();
        let pid = plain.register(meta());
        let cid = compacted.register(meta());
        for (i, &v) in vals.iter().enumerate() {
            plain.append(pid, i as i64 * 60, v);
            compacted.append(cid, i as i64 * 60, v);
        }
        compacted.compact();
        let span = vals.len() as i64 * 60;
        let wins =
            [(a.min(b), a.max(b)), (0, span + 60), (31, (span - 29).max(31)), (0, span / 2 + 1)];
        for (from, to) in wins {
            for op in [AggOp::Mean, AggOp::Min, AggOp::Max, AggOp::Sum, AggOp::Count, AggOp::P95] {
                let (pv, pp) = store_aggregate(&plain, pid, from, to, op).unwrap();
                let (cv, cp) = store_aggregate(&compacted, cid, from, to, op).unwrap();
                prop_assert_eq!(pp, cp, "plan diverged for {:?} on [{}, {})", op, from, to);
                prop_assert!(
                    pv.to_bits() == cv.to_bits() || (pv.is_nan() && cv.is_nan()),
                    "{:?} on [{}, {}): plain {} vs compacted {}", op, from, to, pv, cv
                );
            }
        }
    }

    #[test]
    fn zone_pruned_raw_aggregates_agree_with_brute_force(
        vals in proptest::collection::vec(-5000.0f64..5000.0, 2049..2149),
    ) {
        // Four full sealed chunks compact into one zone-mapped chunk; a
        // raw-plan window covering every zone must answer the brute-force
        // fold while decoding nothing, and a zone-straddling window must
        // decode exactly the one chunk it needs.
        let store = TsdbStore::default();
        let id = store.register(meta());
        for (i, &v) in vals.iter().enumerate() {
            store.append(id, i as i64 * 60, v);
        }
        let stats = store.compact();
        prop_assert_eq!(stats.chunks_compacted, 4);
        let sealed = &vals[..2048];
        let to = 2047 * 60 + 30; // past the last sealed sample, rollup-unaligned

        let before = store.query_stats();
        let (sum, _) = store_aggregate(&store, id, 0, to, AggOp::Sum).unwrap();
        let (count, _) = store_aggregate(&store, id, 0, to, AggOp::Count).unwrap();
        let (min, _) = store_aggregate(&store, id, 0, to, AggOp::Min).unwrap();
        let (max, _) = store_aggregate(&store, id, 0, to, AggOp::Max).unwrap();
        let d = store.query_stats().delta_since(&before);
        prop_assert_eq!(d.plans_raw, 4, "unaligned windows must plan raw");
        prop_assert_eq!(d.chunks_decoded + d.chunk_cache_hits, 0, "fully zone-covered: no decode");
        prop_assert_eq!(d.blocks_pruned, 16, "4 zones pruned by each of 4 queries");

        let brute_sum: f64 = sealed.iter().sum();
        prop_assert!((sum - brute_sum).abs() < 1e-6 * brute_sum.abs().max(1.0));
        prop_assert_eq!(count, 2048.0);
        prop_assert_eq!(min, sealed.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(max, sealed.iter().copied().fold(f64::NEG_INFINITY, f64::max));

        // Straddle the first zone: one decode, three prunes.
        let before = store.query_stats();
        let (psum, _) = store_aggregate(&store, id, 30, to, AggOp::Sum).unwrap();
        let d = store.query_stats().delta_since(&before);
        prop_assert_eq!(d.chunks_decoded + d.chunk_cache_hits, 1);
        prop_assert_eq!(d.blocks_pruned, 3);
        let brute_psum: f64 = sealed[1..].iter().sum();
        prop_assert!((psum - brute_psum).abs() < 1e-6 * brute_psum.abs().max(1.0));
    }
}

/// A flaky meter stream: mostly plausible readings, salted with spikes,
/// negatives, NaNs, a constant that induces stuck runs, and occasional
/// backwards timestamps. `(delta, value)` pairs; deltas ≤ 0 produce
/// non-monotonic samples.
fn arb_meter_stream() -> impl Strategy<Value = Vec<(i64, f64)>> {
    let delta = prop_oneof![
        5 => 1i64..180,
        1 => -120i64..=0,
    ];
    let value = prop_oneof![
        6 => 0.0f64..500.0,
        1 => 501.0f64..50_000.0,       // spike: above max_value
        1 => -1_000.0f64..-0.01,       // negative: below min_value
        1 => Just(f64::NAN),
        2 => Just(123.456),            // constant: induces stuck runs
    ];
    proptest::collection::vec((delta, value), 1..400)
}

/// Run a stream through the sanitiser, returning the store, series id and
/// the ledger of what happened to every offered sample.
#[allow(clippy::type_complexity)]
fn sanitise_stream(
    stream: &[(i64, f64)],
) -> (TsdbStore, archer2_repro::tsdb::SeriesId, Vec<(i64, f64)>, Vec<i64>) {
    let store = TsdbStore::default();
    let id = store.register(meta());
    let mut san = Sanitizer::new(SanitizeConfig::default());
    let mut kept = Vec::new();
    let mut quarantined_ts = Vec::new();
    let mut ts = 0i64;
    for &(delta, v) in stream {
        ts += delta;
        match san.ingest(&store, id, ts, v) {
            Some(SampleFate::Stored) => kept.push((ts, v)),
            Some(SampleFate::Quarantined(_)) => quarantined_ts.push(ts),
            None => unreachable!("series is registered"),
        }
    }
    // The sanitiser's own ledger must reconcile: every offer either stored
    // or quarantined, nothing lost, nothing double-counted.
    let stats = san.stats();
    assert_eq!(stats.stored, kept.len() as u64);
    assert_eq!(stats.quarantined(), quarantined_ts.len() as u64);
    assert_eq!(stats.stored + stats.quarantined(), stream.len() as u64);
    (store, id, kept, quarantined_ts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn quarantined_samples_never_reach_any_aggregate(stream in arb_meter_stream()) {
        // Quarantine-by-construction: refused samples must be invisible to
        // every read path — raw scans, the running total, and the
        // rollup-planned window aggregate — while still being counted in
        // the quality mask.
        let (store, id, kept, quarantined_ts) = sanitise_stream(&stream);

        // Raw scan returns exactly the stored samples, bit for bit.
        let scanned = store.with_series(id, |s| s.scan(i64::MIN, i64::MAX)).unwrap();
        prop_assert_eq!(scanned.len(), kept.len());
        for (&(st, sv), &(kt, kv)) in scanned.iter().zip(&kept) {
            prop_assert_eq!(st, kt);
            prop_assert_eq!(sv.to_bits(), kv.to_bits());
        }

        // The running total and the rollup-planned full-range aggregate
        // agree with a brute-force fold over the kept samples only.
        let total = store.with_series(id, |s| *s.total_aggregate()).unwrap();
        let planned = store
            .with_series(id, |s| window_aggregate(s, i64::MIN / 2, i64::MAX / 2))
            .unwrap();
        prop_assert_eq!(total.count, kept.len() as u64);
        prop_assert_eq!(planned.count, kept.len() as u64);
        if !kept.is_empty() {
            let sum: f64 = kept.iter().map(|&(_, v)| v).sum();
            let min = kept.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let max = kept.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((total.sum - sum).abs() < 1e-6 * sum.abs().max(1.0));
            prop_assert_eq!(total.min, min);
            prop_assert_eq!(total.max, max);
            prop_assert!((planned.sum - sum).abs() < 1e-6 * sum.abs().max(1.0));
            // Every stored value passed the range screen.
            prop_assert!(min >= 0.0 && max <= 500.0);
        }

        // The quality mask holds every refusal, and nothing else.
        let logged = store.with_series(id, |s| s.quarantined().to_vec()).unwrap();
        prop_assert_eq!(logged.len(), quarantined_ts.len());
        for (q, &ts) in logged.iter().zip(&quarantined_ts) {
            prop_assert_eq!(q.ts, ts);
        }
    }

    #[test]
    fn gap_aware_aggregate_agrees_with_brute_force_scan(
        stream in arb_meter_stream(),
        a in 0i64..25_000,
        b in 0i64..25_000,
    ) {
        // The gap-aware window answer must equal a brute-force scan over
        // the stored samples in the window: same moments, coverage =
        // present / ceil(span / cadence), quarantined = quality-mask hits.
        let (store, id, kept, quarantined_ts) = sanitise_stream(&stream);
        let (from, to) = (a.min(b), a.max(b));
        let g = store_gap_aggregate(&store, id, from, to).unwrap();

        let in_window: Vec<f64> = kept
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        prop_assert_eq!(g.agg.count, in_window.len() as u64);
        if !in_window.is_empty() {
            let sum: f64 = in_window.iter().sum();
            prop_assert!((g.agg.sum - sum).abs() < 1e-6 * sum.abs().max(1.0));
            prop_assert!((g.mean() - sum / in_window.len() as f64).abs() < 1e-9);
        }

        let q_in = quarantined_ts.iter().filter(|&&t| t >= from && t < to).count();
        prop_assert_eq!(g.quarantined, q_in as u64);

        if to > from {
            let expected = ((to - from) as u64).div_ceil(60);
            prop_assert_eq!(g.expected, expected);
            let cov = (in_window.len() as f64 / expected as f64).clamp(0.0, 1.0);
            prop_assert!((g.coverage - cov).abs() < 1e-12);
        } else {
            prop_assert!((g.coverage - 1.0).abs() < 1e-12);
        }
        prop_assert!((0.0..=1.0).contains(&g.coverage));
    }

    #[test]
    fn gap_windows_partition_and_match_per_window_brute_force(
        stream in arb_meter_stream(),
        step_minutes in 1i64..120,
    ) {
        // Windowing over [0, span) is a partition of the stored samples at
        // non-negative timestamps, and each window independently agrees
        // with the single-window gap aggregate over its own range.
        let (store, id, kept, _) = sanitise_stream(&stream);
        let span = kept.iter().map(|&(t, _)| t + 1).max().unwrap_or(0).max(1);
        let step = step_minutes * 60;
        let windows = store_gap_windows(&store, id, 0, span, step).unwrap();

        let total: u64 = windows.iter().map(|w| w.count).sum();
        let stored_nonneg = kept.iter().filter(|&&(t, _)| t >= 0).count() as u64;
        prop_assert_eq!(total, stored_nonneg);

        for w in &windows {
            let end = (w.start + step).min(span);
            let g = store_gap_aggregate(&store, id, w.start, end).unwrap();
            prop_assert_eq!(w.count, g.agg.count);
            prop_assert_eq!(w.expected, g.expected);
            prop_assert_eq!(w.quarantined, g.quarantined);
            prop_assert!((w.coverage - g.coverage).abs() < 1e-12);
            if w.count > 0 {
                prop_assert!((w.mean - g.mean()).abs() < 1e-9);
            }
        }
    }
}
