//! Reconciliation of the compressed telemetry store against the campaign's
//! dense series, and the paper's change-point means read back through tsdb
//! queries.
//!
//! The paper's Figures 1–3 are cabinet-PDU measurements aggregated to the
//! facility level; here we check the same accounting holds inside the
//! store: per-cabinet series sum to the facility series, and the
//! 3,220 → 3,010 → 2,530 kW campaign means survive a round trip through
//! Gorilla compression and the rollup-aware query planner.

use archer2_repro::core::campaign::{Campaign, CampaignConfig};
use archer2_repro::core::experiment::scaled_facility;
use archer2_repro::prelude::*;
use archer2_repro::tsdb::query::{aggregate, segment_means, AggOp};
use archer2_repro::tsdb::{fanout_aggregate, fanout_group, store_segment_means};
use archer2_repro::workload::{GeneratorConfig, OperatingPoint};

const SCALE: u32 = 10;

fn config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        generator: GeneratorConfig {
            max_nodes: (1024 / SCALE).max(16),
            ..GeneratorConfig::default()
        },
        backlog_target: (120 / SCALE as usize).max(40),
        per_cabinet_telemetry: true,
        ..CampaignConfig::default()
    }
}

#[test]
fn cabinet_series_sum_to_facility_series_inside_the_store() {
    let facility = scaled_facility(41, SCALE);
    let start = SimTime::from_ymd(2022, 6, 1);
    let mut c = Campaign::new(facility, config(41), start, OperatingPoint::AFTER_BIOS);
    c.run_until(start + SimDuration::from_days(3));

    let store = c.telemetry_store();
    let from = start.as_unix() as i64;
    let to = (start + SimDuration::from_days(3)).as_unix() as i64;

    // Sample-by-sample: decode every cabinet series from its compressed
    // chunks and reconcile the per-timestamp sum against the facility
    // series (which carries ±1 % telemetry noise; the cabinets are
    // noiseless, so allow 5 sigma).
    let facility_samples = store
        .with_series(c.facility_series_id(), |s| s.scan(from, to))
        .unwrap();
    assert!(facility_samples.len() > 280, "3 days at 15 min cadence");
    let mut cabinet_sum = vec![0.0f64; facility_samples.len()];
    for &sid in c.cabinet_series_ids() {
        let samples = store.with_series(sid, |s| s.scan(from, to)).unwrap();
        assert_eq!(samples.len(), facility_samples.len());
        for (acc, &(ts, kw)) in cabinet_sum.iter_mut().zip(&samples) {
            assert!(ts >= from && ts < to);
            *acc += kw;
        }
    }
    for (i, (&sum, &(_, fac))) in cabinet_sum.iter().zip(&facility_samples).enumerate() {
        assert!(
            (sum - fac).abs() / fac < 0.05,
            "sample {i}: cabinets {sum} kW vs facility {fac} kW"
        );
    }

    // Aggregate-level reconciliation through the query planner: summed
    // cabinet means equal the facility mean well inside the noise floor.
    let fac_mean = aggregate(
        &store.with_series(c.facility_series_id(), Clone::clone).unwrap(),
        from,
        to,
        AggOp::Mean,
    )
    .0;
    let cab_mean: f64 = c
        .cabinet_series_ids()
        .iter()
        .map(|&sid| store.with_series(sid, |s| aggregate(s, from, to, AggOp::Mean).0).unwrap())
        .sum();
    assert!(
        (cab_mean - fac_mean).abs() / fac_mean < 0.01,
        "cabinet mean sum {cab_mean} kW vs facility mean {fac_mean} kW"
    );

    // The parallel fan-out answers the same cabinet means the sequential
    // planner loop above produced, within 1e-9 relative.
    let ids = c.cabinet_series_ids();
    let fanned = fanout_aggregate(store, ids, from, to, AggOp::Mean);
    for (&sid, f) in ids.iter().zip(&fanned) {
        let seq = store.with_series(sid, |s| aggregate(s, from, to, AggOp::Mean).0).unwrap();
        let fan = f.unwrap().0;
        assert!(
            (fan - seq).abs() <= 1e-9 * seq.abs().max(1.0),
            "fan-out {fan} vs sequential {seq}"
        );
    }
    let group = fanout_group(store, ids, from, to);
    assert_eq!(group.series, ids.len());
    assert_eq!(group.missing, 0);
    assert!(
        (group.sum_of_means - cab_mean).abs() <= 1e-9 * cab_mean,
        "grouped sum {} vs sequential sum {cab_mean}",
        group.sum_of_means
    );
    // Query instrumentation saw all of the above store-level traffic.
    let stats = store.query_stats();
    assert!(stats.queries >= 2 * ids.len() as u64, "stats: {stats:?}");
}

#[test]
fn change_point_means_read_back_through_tsdb_queries() {
    // One campaign across both operational changes, compressed to 12-day
    // segments (the means settle after ~2 days as running jobs drain).
    let facility = scaled_facility(2022, SCALE);
    let k = 5860.0 / facility.nodes() as f64;
    let start = SimTime::from_ymd(2022, 4, 1);
    let bios = start + SimDuration::from_days(12);
    let freq = bios + SimDuration::from_days(12);
    let end = freq + SimDuration::from_days(12);

    let mut c = Campaign::new(facility, config(2022), start, OperatingPoint::ORIGINAL);
    c.run_until(bios);
    c.set_operating_point(OperatingPoint::AFTER_BIOS);
    c.run_until(freq);
    c.set_operating_point(OperatingPoint::AFTER_FREQ);
    c.run_until(end);

    let series = c
        .telemetry_store()
        .with_series(c.facility_series_id(), Clone::clone)
        .unwrap();
    let settle = SimDuration::from_days(2);
    let ts = |t: SimTime| t.as_unix() as i64;

    // Settled segment means via the rollup-aware aggregate, scaled back to
    // full-facility kilowatts. Paper: 3,220 / 3,010 / 2,530 kW, ±2 %.
    let expectations = [
        (ts(start), ts(bios), 3220.0),
        (ts(bios + settle), ts(freq), 3010.0),
        (ts(freq + settle), ts(end), 2530.0),
    ];
    for (from, to, paper_kw) in expectations {
        let (mean, plan) = aggregate(&series, from, to, AggOp::Mean);
        let mean_kw = mean * k;
        assert!(
            (mean_kw - paper_kw).abs() / paper_kw < 0.02,
            "segment [{from}, {to}) mean {mean_kw:.0} kW vs paper {paper_kw} kW (plan {plan:?})"
        );
        // The cached, instrumented store path reads back the same number
        // the series-level planner produced, within 1e-9 relative.
        let (cached, _) = archer2_repro::tsdb::store_aggregate(
            c.telemetry_store(),
            c.facility_series_id(),
            from,
            to,
            AggOp::Mean,
        )
        .unwrap();
        assert!(
            (cached - mean).abs() <= 1e-9 * mean.abs().max(1.0),
            "cached {cached} vs sequential {mean}"
        );
    }

    // The change-point segment-means helper sees the same staircase
    // (boundaries unsettled, so just require strictly decreasing steps).
    let boundaries = [ts(start), ts(bios), ts(freq), ts(end)];
    let means = segment_means(&series, &boundaries);
    assert_eq!(means.len(), 3);
    assert!(
        means[0] > means[1] && means[1] > means[2],
        "segment means should step down: {means:?}"
    );

    // Same staircase through the cached store path, 1e-9-identical.
    let cached =
        store_segment_means(c.telemetry_store(), c.facility_series_id(), &boundaries).unwrap();
    assert_eq!(cached.len(), means.len());
    for (cm, sm) in cached.iter().zip(&means) {
        assert!(
            (cm - sm).abs() <= 1e-9 * sm.abs().max(1.0),
            "cached segment mean {cm} vs sequential {sm}"
        );
    }
}
