//! Cross-crate physical invariants of the campaign simulation: power
//! bounds, energy bookkeeping, utilisation accounting, operating-point
//! ordering.

use archer2_repro::core::campaign::{Campaign, CampaignConfig};
use archer2_repro::core::experiment::scaled_facility;
use archer2_repro::power::DeterminismMode;
use archer2_repro::prelude::*;
use archer2_repro::workload::OperatingPoint;

const SEED: u64 = 99;
const SCALE: u32 = 20;

fn run_campaign(op: OperatingPoint, days: u64) -> Campaign {
    let facility = scaled_facility(SEED, SCALE);
    let start = SimTime::from_ymd(2022, 3, 1);
    let mut c = Campaign::new(facility, CampaignConfig::default(), start, op);
    c.run_until(start + SimDuration::from_days(days));
    c
}

#[test]
fn power_never_below_idle_floor_nor_above_loaded_ceiling() {
    let c = run_campaign(OperatingPoint::ORIGINAL, 7);
    let f = c.facility();
    let idle_floor = f.idle_budget(DeterminismMode::Power).compute_cabinets_kw();
    let loaded = f.loaded_budget(OperatingPoint::ORIGINAL).compute_cabinets_kw();
    // Allow headroom for telemetry noise and app-power spread above the
    // generic profile used by loaded_budget.
    let ceiling = loaded * 1.10;
    for &kw in c.power_series().values().iter() {
        assert!(kw >= idle_floor * 0.95, "sample {kw} below idle floor {idle_floor}");
        assert!(kw <= ceiling, "sample {kw} above ceiling {ceiling}");
    }
}

#[test]
fn operating_points_are_strictly_ordered_in_power() {
    let power_at = |op| run_campaign(op, 5).power_series().mean();
    let original = power_at(OperatingPoint::ORIGINAL);
    let after_bios = power_at(OperatingPoint::AFTER_BIOS);
    let after_freq = power_at(OperatingPoint::AFTER_FREQ);
    assert!(
        original > after_bios && after_bios > after_freq,
        "{original:.0} > {after_bios:.0} > {after_freq:.0} violated"
    );
}

#[test]
fn energy_integral_consistent_with_mean_power() {
    let c = run_campaign(OperatingPoint::AFTER_BIOS, 6);
    let s = c.power_series();
    let kwh = s.integral_unit_hours();
    let span_h = s.len() as f64 * s.interval().as_hours_f64();
    assert!((kwh - s.mean() * span_h).abs() / kwh < 1e-9);
}

#[test]
fn utilisation_is_high_but_below_one() {
    let c = run_campaign(OperatingPoint::ORIGINAL, 10);
    let u = c.utilisation();
    assert!(u > 0.90, "utilisation {u}");
    assert!(u < 1.0, "utilisation cannot reach 100% (scheduling overheads)");
}

#[test]
fn throughput_falls_when_clock_falls() {
    // At 2.0 GHz jobs run longer, so fewer jobs complete per simulated day
    // at equal utilisation.
    let fast = run_campaign(OperatingPoint::AFTER_BIOS, 10);
    let slow = run_campaign(OperatingPoint::AFTER_FREQ, 10);
    let (fast_started, _) = fast.job_counts();
    let (slow_started, _) = slow.job_counts();
    assert!(
        slow_started < fast_started,
        "slower clock should start fewer jobs: {slow_started} vs {fast_started}"
    );
}

#[test]
fn job_stream_is_steady_state() {
    // After the first day the machine stays near-full: sample variance of
    // the power series is a small fraction of its mean.
    let c = run_campaign(OperatingPoint::ORIGINAL, 10);
    let s = c.power_series();
    let day = SimDuration::from_days(1);
    let stats = s.window_stats(s.start() + day, s.end());
    assert!(
        stats.std_dev() / stats.mean() < 0.05,
        "steady-state power should be tight: cv = {}",
        stats.std_dev() / stats.mean()
    );
}

#[test]
fn events_processed_scales_with_span() {
    let short = run_campaign(OperatingPoint::ORIGINAL, 3);
    let long = run_campaign(OperatingPoint::ORIGINAL, 9);
    assert!(
        long.events_processed() > 2 * short.events_processed(),
        "event count must grow with the simulated span"
    );
}
