//! Property-based tests (proptest) on the core models and data structures:
//! the invariants that must hold for *any* parameters, not just the
//! calibrated ones.

use archer2_repro::core::campaign::{Campaign, CampaignConfig, FaultInjectionConfig};
use archer2_repro::core::experiment::scaled_facility;
use archer2_repro::faults::{DomainFaultConfig, DomainRate};
use archer2_repro::power::{
    DeterminismMode, FreqSetting, NodeActivity, NodePowerModel, NodeSpec, SiliconLottery,
    SiliconSample, SocketPowerModel, SocketSpec,
};
use archer2_repro::sim::dist::{Categorical, Distribution, LogNormal, Weibull};
use archer2_repro::sim::rng::{Rng, Xoshiro256StarStar};
use archer2_repro::sim::stats::OnlineStats;
use archer2_repro::sim::time::{SimDuration, SimTime};
use archer2_repro::telemetry::TimeSeries;
use archer2_repro::workload::{AppModel, OperatingPoint, ResearchArea};
use proptest::prelude::*;

fn arb_part() -> impl Strategy<Value = SiliconSample> {
    (0.88f64..=1.0, 0.8f64..=1.08).prop_map(|(v_margin, leak)| SiliconSample { v_margin, leak })
}

fn arb_activity() -> impl Strategy<Value = f64> {
    0.0f64..=1.2
}

proptest! {
    #[test]
    fn socket_power_within_physical_bounds(
        part in arb_part(),
        a in arb_activity(),
        boost in proptest::bool::ANY,
        perf_det in proptest::bool::ANY,
    ) {
        let m = SocketPowerModel::new(SocketSpec::default());
        let lot = SiliconLottery::default();
        let setting = if boost { FreqSetting::TurboBoost2250 } else { FreqSetting::Mid2000 };
        let mode = if perf_det { DeterminismMode::Performance } else { DeterminismMode::Power };
        let p = m.power_w(setting, mode, a, &part, &lot);
        // Never below the IO-die floor, never above the package cap.
        prop_assert!(p >= m.spec().p_io_w, "power {p} below IO floor");
        prop_assert!(p <= m.spec().p_cap_w + 1e-9, "power {p} above cap");
    }

    #[test]
    fn performance_determinism_never_draws_more_than_power_determinism(
        part in arb_part(),
        a in arb_activity(),
    ) {
        let m = SocketPowerModel::new(SocketSpec::default());
        let lot = SiliconLottery::default();
        let pd = m.power_w(FreqSetting::TurboBoost2250, DeterminismMode::Power, a, &part, &lot);
        let det = m.power_w(FreqSetting::TurboBoost2250, DeterminismMode::Performance, a, &part, &lot);
        prop_assert!(det <= pd + 1e-9, "perf det {det} > power det {pd}");
    }

    #[test]
    fn effective_freq_between_floor_and_ceiling(
        part in arb_part(),
        a in arb_activity(),
    ) {
        let m = SocketPowerModel::new(SocketSpec::default());
        let lot = SiliconLottery::default();
        for mode in [DeterminismMode::Power, DeterminismMode::Performance] {
            let f = m.effective_freq(FreqSetting::TurboBoost2250, mode, a, &part, &lot);
            prop_assert!(f >= 2.25 - 1.0, "boost frequency {f} below any plausible floor");
            prop_assert!(f <= m.spec().f_allcore_ceiling_ghz + 1e-12);
        }
    }

    #[test]
    fn node_power_monotone_in_every_activity_axis(
        part in arb_part(),
        cpu in 0.0f64..=1.0,
        mem in 0.0f64..=0.9,
        thr in 0.0f64..=0.9,
    ) {
        let m = NodePowerModel::new(NodeSpec::default());
        let lot = SiliconLottery::default();
        let parts = [part, part];
        let base = NodeActivity { cpu, mem, throughput: thr };
        let p0 = m.power(FreqSetting::Mid2000, DeterminismMode::Performance, base, &parts, &lot).total_w();
        for bumped in [
            NodeActivity { cpu: (cpu + 0.1).min(1.2), ..base },
            NodeActivity { mem: mem + 0.1, ..base },
            NodeActivity { throughput: thr + 0.1, ..base },
        ] {
            let p1 = m.power(FreqSetting::Mid2000, DeterminismMode::Performance, bumped, &parts, &lot).total_w();
            prop_assert!(p1 >= p0 - 1e-9, "activity bump reduced power: {p0} -> {p1}");
        }
    }

    #[test]
    fn app_energy_identity_holds_for_any_profile(
        beta in 0.0f64..=1.0,
        a in 0.05f64..=1.0,
        mem in 0.0f64..=1.0,
    ) {
        let app = AppModel::raw("prop", ResearchArea::Other, beta, a, mem);
        let nm = NodePowerModel::new(NodeSpec::default());
        let lot = SiliconLottery::default();
        for op in [OperatingPoint::ORIGINAL, OperatingPoint::AFTER_FREQ] {
            let e = app.energy_ratio(op, &nm, &lot);
            let p = app.node_power_w(op, &nm, &lot)
                / app.node_power_w(OperatingPoint::AFTER_BIOS, &nm, &lot);
            let t = app.runtime_ratio(op, &nm, &lot);
            prop_assert!((e - p * t).abs() < 1e-9, "E = P·t identity violated");
        }
    }

    #[test]
    fn app_slowdown_bounded_by_frequency_ratio(
        beta in 0.0f64..=1.0,
        a in 0.05f64..=1.0,
    ) {
        // t(2.0)/t(ref) ∈ [1, f_ref/2.0]: β interpolates between the
        // extremes and can never exceed pure frequency scaling.
        let app = AppModel::raw("prop", ResearchArea::Other, beta, a, 0.5);
        let nm = NodePowerModel::new(NodeSpec::default());
        let lot = SiliconLottery::default();
        let rt = app.runtime_ratio(OperatingPoint::AFTER_FREQ, &nm, &lot);
        let f_ref = app.effective_freq(OperatingPoint::AFTER_BIOS, &nm, &lot);
        prop_assert!(rt >= 1.0 - 1e-12);
        prop_assert!(rt <= f_ref / 2.0 + 1e-12, "slowdown {rt} exceeds frequency ratio");
    }

    #[test]
    fn online_stats_merge_associative(
        data in proptest::collection::vec(-1e6f64..1e6, 3..200),
        split in 1usize..100,
    ) {
        let split = split.min(data.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..split] {
            left.push(x);
        }
        for &x in &data[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3 * whole.variance().max(1.0));
    }

    #[test]
    fn time_roundtrip_for_any_instant(secs in 0u64..4_102_444_800) {
        // Any instant up to year 2100 survives the calendar roundtrip.
        let t = SimTime::from_unix(secs);
        prop_assert_eq!(t.stamp().to_sim_time(), t);
    }

    #[test]
    fn timeseries_window_mean_within_minmax(
        vals in proptest::collection::vec(0.0f64..5000.0, 1..200),
        a in 0usize..200,
        b in 0usize..200,
    ) {
        let mut s = TimeSeries::new(SimTime::EPOCH, SimDuration::from_mins(15), "kW");
        for &v in &vals {
            s.push(v);
        }
        let (lo, hi) = (a.min(b), a.max(b).min(vals.len()));
        if lo < hi {
            let mean = s.window_mean(s.time_at(lo), s.time_at(hi));
            let min = vals[lo..hi].iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals[lo..hi].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= min - 1e-9 && mean <= max + 1e-9);
        }
    }

    #[test]
    fn categorical_always_returns_valid_index(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        seed in proptest::num::u64::ANY,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let cat = Categorical::new(&weights);
        let mut rng = Xoshiro256StarStar::seeded(seed);
        for _ in 0..50 {
            let i = cat.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "zero-weight category {i} drawn");
        }
    }

    #[test]
    fn distributions_produce_finite_positive_samples(
        seed in proptest::num::u64::ANY,
        mean in 0.1f64..1e4,
        shape in 0.3f64..5.0,
    ) {
        let mut rng = Xoshiro256StarStar::seeded(seed);
        let ln = LogNormal::from_mean(mean, 0.5);
        let wb = Weibull::new(shape, mean);
        for _ in 0..20 {
            let a = ln.sample(&mut rng);
            let b = wb.sample(&mut rng);
            prop_assert!(a.is_finite() && a > 0.0);
            prop_assert!(b.is_finite() && b >= 0.0);
        }
    }

    #[test]
    fn rng_next_below_always_in_range(
        seed in proptest::num::u64::ANY,
        bound in 1u64..u64::MAX,
    ) {
        let mut rng = Xoshiro256StarStar::seeded(seed);
        for _ in 0..20 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental power accounting vs brute-force recompute
// ---------------------------------------------------------------------------

/// Fault rates hot enough that a day or two of simulation sees node kills,
/// cabinet/CDU trips (taking whole node groups down at once) and repairs.
fn storm(node_mtbf: f64, cabinet_mtbf: f64, horizon_h: u64) -> FaultInjectionConfig {
    FaultInjectionConfig {
        domains: DomainFaultConfig {
            node: DomainRate { mtbf_hours: node_mtbf, repair_mean_hours: 3.0, repair_sigma: 0.5 },
            cabinet: DomainRate {
                mtbf_hours: cabinet_mtbf,
                repair_mean_hours: 2.0,
                repair_sigma: 0.4,
            },
            cdu: DomainRate { mtbf_hours: 90.0, repair_mean_hours: 2.0, repair_sigma: 0.4 },
            switch: DomainRate { mtbf_hours: 700.0, repair_mean_hours: 2.0, repair_sigma: 0.4 },
            ..DomainFaultConfig::default()
        },
        horizon: SimDuration::from_hours(horizon_h),
        ..FaultInjectionConfig::default()
    }
}

// Campaign-scale cases are much heavier than the model-level ones above, so
// this block runs fewer of them; each case still drives hundreds of
// submit/start/finish/fail/repair transitions through the accounting.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant of the incremental power accounting: after
    /// *any* interleaving of job starts, finishes, fault kills and repairs
    /// (faults on), the per-cabinet and fleet busy-power/busy-count
    /// aggregates must exactly match a brute-force recompute from the
    /// scheduler and fault state. `verify_invariants` runs that recompute
    /// (`audit_power_accounting`), and in debug builds every telemetry tick
    /// re-asserts it via `debug_assert!` inside `sample_cabinets`.
    #[test]
    fn incremental_power_accounting_matches_recompute(
        seed in proptest::num::u64::ANY,
        step_hours in proptest::collection::vec(2u64..16, 2..5),
        op_picks in proptest::collection::vec(0usize..3, 2..5),
        node_mtbf in 60.0f64..400.0,
        cabinet_mtbf in 100.0f64..400.0,
    ) {
        let horizon: u64 = step_hours.iter().sum();
        let cfg = CampaignConfig {
            seed,
            per_cabinet_telemetry: true,
            faults: Some(storm(node_mtbf, cabinet_mtbf, horizon)),
            backlog_target: 40,
            ..CampaignConfig::default()
        };
        let start = SimTime::from_ymd(2022, 3, 1);
        let ops = [OperatingPoint::ORIGINAL, OperatingPoint::AFTER_BIOS, OperatingPoint::AFTER_FREQ];
        let mut campaign =
            Campaign::new(scaled_facility(seed, 10), cfg, start, OperatingPoint::AFTER_BIOS);
        let mut t = start;
        for (i, &h) in step_hours.iter().enumerate() {
            t += SimDuration::from_hours(h);
            campaign.run_until(t);
            let violations = campaign.verify_invariants();
            prop_assert!(
                violations.is_empty(),
                "accounting diverged after step {i} ({h} h): {violations:?}"
            );
            // Changing the operating point mid-stream re-prices every
            // running job at its next touch point.
            campaign.set_operating_point(ops[op_picks[i % op_picks.len()]]);
        }
    }
}
