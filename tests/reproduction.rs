//! End-to-end reproduction contract: every table and figure of the paper,
//! regenerated from the models and checked against the published numbers.
//!
//! This is the repository's headline test: if it passes, `EXPERIMENTS.md`
//! regenerates.

use archer2_repro::core::experiment;

const SEED: u64 = 2022;
const SCALE: u32 = 10;

#[test]
fn full_paper_reproduction() {
    // --- Table 1 ----------------------------------------------------------
    let t1 = experiment::table1();
    assert_eq!(t1.compute_nodes, 5860);
    assert_eq!(t1.compute_cores, 750_080);
    assert_eq!(t1.slingshot_switches, 768);
    assert_eq!(t1.cabinets, 23);
    assert_eq!(t1.cdus, 6);
    assert_eq!(t1.filesystems, 5);

    // --- Table 2 ----------------------------------------------------------
    let t2 = experiment::table2(SEED);
    assert!((t2.idle_total_kw - 1800.0).abs() / 1800.0 < 0.05);
    assert!((t2.loaded_total_kw - 3500.0).abs() / 3500.0 < 0.05);

    // --- Tables 3 and 4 ---------------------------------------------------
    assert!(experiment::table3(SEED).max_abs_error() < 0.01);
    assert!(experiment::table4(SEED).max_abs_error() < 0.01);

    // --- Figures 1-3 ------------------------------------------------------
    let fig1 = experiment::figure1(SEED, SCALE);
    assert!((fig1.summary.means[0] - 3220.0).abs() / 3220.0 < 0.02);
    assert!(fig1.utilisation > 0.90);

    let fig2 = experiment::figure2(SEED, SCALE);
    assert!((fig2.settled_means_kw[0] - 3220.0).abs() / 3220.0 < 0.02);
    assert!((fig2.settled_means_kw[1] - 3010.0).abs() / 3010.0 < 0.02);

    let fig3 = experiment::figure3(SEED, SCALE);
    assert!((fig3.settled_means_kw[0] - 3010.0).abs() / 3010.0 < 0.02);
    assert!((fig3.settled_means_kw[1] - 2530.0).abs() / 2530.0 < 0.02);

    // --- §5 conclusions ---------------------------------------------------
    let c = experiment::conclusions(SEED, &fig2, &fig3);
    assert!((c.total_saving_kw - 690.0).abs() < 75.0, "saving {}", c.total_saving_kw);
    assert!((c.total_drop - 0.21).abs() < 0.025);

    // --- §2 regimes -------------------------------------------------------
    let regimes = experiment::emissions_regimes(SEED);
    assert!((30.0..=100.0).contains(&regimes.parity_ci));
}

#[test]
fn figure_series_have_visible_steps() {
    // The figures are not just means: the raw series must actually step
    // down at the change instants, like the paper's plots.
    let fig2 = experiment::figure2(SEED, SCALE);
    let fig3 = experiment::figure3(SEED, SCALE);
    for (fig, expected_drop) in [(&fig2, 0.05), (&fig3, 0.12)] {
        let change = fig.changes[0].at();
        let week = sim_core::SimDuration::from_days(7);
        let before = fig.series.window_mean(change - week, change);
        let after = fig.series.window_mean(change + sim_core::SimDuration::from_days(2), change + week + week);
        let drop = (before - after) / before;
        assert!(
            drop > expected_drop,
            "{}: step too small ({drop:.3})",
            fig.label
        );
    }
}

#[test]
fn figures_render_paper_style_output() {
    let fig = experiment::figure2(SEED, SCALE);
    let out = fig.render();
    assert!(out.contains("Figure 2"));
    assert!(out.contains("Apr 2022"), "time axis labels: {out}");
    assert!(out.contains("mean [baseline]"));
    assert!(out.contains("mean [BIOS: performance determinism]"));
}

#[test]
fn reproduction_is_seed_stable() {
    // The contract holds for other seeds too — the reproduction is not a
    // single lucky draw.
    for seed in [1u64, 7, 42] {
        let fig1 = experiment::figure1(seed, SCALE);
        assert!(
            (fig1.summary.means[0] - 3220.0).abs() / 3220.0 < 0.03,
            "seed {seed}: baseline {:.0}",
            fig1.summary.means[0]
        );
        assert!(experiment::table4(seed).max_abs_error() < 0.01);
    }
}

#[test]
fn scaled_facilities_agree() {
    // 1/10 and 1/20 replicas must report the same full-facility baseline
    // within noise — the scaling is composition-preserving.
    let a = experiment::figure1(SEED, 10).summary.means[0];
    let b = experiment::figure1(SEED, 20).summary.means[0];
    assert!((a - b).abs() / a < 0.03, "scale disagreement: {a:.0} vs {b:.0}");
}
