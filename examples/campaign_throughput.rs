//! Campaign throughput benchmark: how many simulated facility-days per
//! second the optimised hot path delivers, with full per-cabinet *and*
//! per-node telemetry enabled — the heaviest sampling configuration the
//! campaign supports.
//!
//! A sweep of (seed × policy × faults on/off) scenarios fans out over
//! `archer2_core::run_scenarios`; each scenario owns an isolated facility
//! and telemetry store. The sweep runs twice — cold (first touch of every
//! code path and allocation) and warm — and both runs must produce
//! bit-identical telemetry digests per scenario: parallel dispatch and
//! warm caches must never change a single stored bit, faults on or off.
//!
//! ```text
//! cargo run --release --example campaign_throughput [-- --smoke]
//! ```
//!
//! Emits `BENCH_campaign.json` with sim-days/s, samples/s and events/s
//! (cold and warm), which `scripts/verify.sh` gates on.

use archer2_repro::core::campaign::{Campaign, CampaignConfig, FaultInjectionConfig, FrequencyPolicy};
use archer2_repro::core::scenarios::{run_scenarios, ScenarioSpec};
use archer2_repro::faults::{DomainFaultConfig, DomainRate};
use archer2_repro::prelude::*;
use archer2_repro::workload::OperatingPoint;
use serde::{Serialize, Value};
use std::time::Instant;

/// Write a benchmark record, then parse it back and check the keys the
/// verify script greps for — a malformed record should fail here, not in CI.
fn write_bench(path: &str, record: Value, required: &[&str]) {
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let json = serde_json::to_string_pretty(&Raw(record)).expect("bench record serialises");
    std::fs::write(path, &json).expect("write benchmark json");
    let parsed = serde_json::parse_value(&json).expect("benchmark json parses back");
    let map = parsed.as_map().expect("benchmark json is an object");
    for key in required {
        assert!(
            serde::value::map_get(map, key).is_some(),
            "benchmark json missing key {key}"
        );
    }
    println!("benchmark record:         {path}");
}

/// Aggressive fault rates so even a short window exercises kills, cabinet
/// trips and repairs on the hot path.
fn storm_faults(days: u64) -> FaultInjectionConfig {
    FaultInjectionConfig {
        domains: DomainFaultConfig {
            node: DomainRate { mtbf_hours: 400.0, repair_mean_hours: 8.0, repair_sigma: 0.5 },
            cabinet: DomainRate { mtbf_hours: 250.0, repair_mean_hours: 4.0, repair_sigma: 0.4 },
            cdu: DomainRate { mtbf_hours: 150.0, repair_mean_hours: 6.0, repair_sigma: 0.4 },
            switch: DomainRate { mtbf_hours: 1_500.0, repair_mean_hours: 4.0, repair_sigma: 0.4 },
            ..DomainFaultConfig::default()
        },
        horizon: SimDuration::from_days(days),
        meters: None,
        sanitize: archer2_repro::tsdb::SanitizeConfig::default(),
    }
}

/// FNV-1a over every stored (timestamp, value) pair of every series the
/// campaign records — facility, per-cabinet and per-node.
fn telemetry_digest(campaign: &Campaign) -> u64 {
    let store = campaign.telemetry_store();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    let mut sids = vec![campaign.facility_series_id()];
    sids.extend_from_slice(campaign.cabinet_series_ids());
    sids.extend_from_slice(campaign.node_series_ids());
    for sid in sids {
        let samples = store
            .with_series(sid, |s| s.scan(i64::MIN, i64::MAX))
            .expect("registered series");
        for (ts, v) in samples {
            fold(ts as u64);
            fold(v.to_bits());
        }
    }
    h
}

/// What one finished scenario reduces to.
struct Outcome {
    label: String,
    faults: bool,
    digest: u64,
    events: u64,
    samples: u64,
    violations: usize,
}

fn build_specs(days: u64) -> Vec<ScenarioSpec> {
    let start = SimTime::from_ymd(2022, 12, 1);
    let end = start + SimDuration::from_days(days);
    let scale = 10;
    let policies: [(&str, FrequencyPolicy); 2] = [
        ("blanket", FrequencyPolicy::Blanket),
        (
            "auto-revert",
            FrequencyPolicy::AutoRevert { threshold: 0.90, user_revert_fraction: 0.05 },
        ),
    ];
    let mut specs = Vec::new();
    for (seed, op) in [(2022u64, OperatingPoint::AFTER_FREQ), (2023, OperatingPoint::AFTER_BIOS)] {
        for (plabel, policy) in &policies {
            for faults in [false, true] {
                let cfg = CampaignConfig {
                    seed,
                    policy: *policy,
                    per_cabinet_telemetry: true,
                    per_node_telemetry: true,
                    faults: faults.then(|| storm_faults(days)),
                    backlog_target: 60,
                    ..CampaignConfig::default()
                };
                let label = format!(
                    "seed{seed}/{plabel}/faults-{}",
                    if faults { "on" } else { "off" }
                );
                specs.push(ScenarioSpec::new(label, cfg, scale, start, end, op));
            }
        }
    }
    specs
}

fn run_sweep(specs: &[ScenarioSpec]) -> (f64, Vec<Outcome>) {
    let t0 = Instant::now();
    let outcomes = run_scenarios(specs, |spec, campaign| Outcome {
        label: spec.label.clone(),
        faults: spec.config.faults.is_some(),
        digest: telemetry_digest(campaign),
        events: campaign.events_processed(),
        samples: campaign.telemetry_store().total_samples(),
        violations: campaign.verify_invariants().len(),
    });
    (t0.elapsed().as_secs_f64(), outcomes)
}

/// Fold per-scenario digests (input order) into one sweep digest.
fn fold_digests(outcomes: &[Outcome], faults: bool) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for o in outcomes.iter().filter(|o| o.faults == faults) {
        for b in o.digest.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let days: u64 = if smoke { 2 } else { 14 };
    let specs = build_specs(days);
    let sim_days = (specs.len() as u64 * days) as f64;

    println!(
        "=== campaign throughput: {} scenarios x {days} days, 1/10 scale, per-node telemetry on, {} workers ===",
        specs.len(),
        rayon::current_num_threads(),
    );

    let (cold_s, cold) = run_sweep(&specs);
    let (warm_s, warm) = run_sweep(&specs);

    let mut violations = 0usize;
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            c.digest, w.digest,
            "{}: cold and warm telemetry digests differ — same-seed runs must be bit-identical",
            c.label
        );
        violations += c.violations + w.violations;
        println!(
            "  {:<32} digest {:016x}  {:>9} events  {:>9} samples  {} violations",
            c.label, c.digest, c.events, c.samples, c.violations
        );
    }
    let events: u64 = warm.iter().map(|o| o.events).sum();
    let samples: u64 = warm.iter().map(|o| o.samples).sum();
    let digest_on = fold_digests(&warm, true);
    let digest_off = fold_digests(&warm, false);

    println!();
    println!("cold: {cold_s:.2} s   warm: {warm_s:.2} s");
    println!(
        "warm throughput: {:.1} sim-days/s, {:.2} M samples/s, {:.2} M events/s",
        sim_days / warm_s,
        samples as f64 / warm_s / 1e6,
        events as f64 / warm_s / 1e6,
    );
    assert_eq!(violations, 0, "campaign invariants violated during the sweep");

    write_bench(
        "BENCH_campaign.json",
        Value::Map(vec![
            ("bench".into(), "campaign_throughput".to_string().to_value()),
            ("smoke".into(), smoke.to_value()),
            ("scenarios".into(), (specs.len() as u64).to_value()),
            ("days_per_scenario".into(), days.to_value()),
            ("sim_days".into(), sim_days.to_value()),
            ("workers".into(), (rayon::current_num_threads() as u64).to_value()),
            ("cold_s".into(), cold_s.to_value()),
            ("warm_s".into(), warm_s.to_value()),
            ("sim_days_per_s".into(), (sim_days / warm_s).to_value()),
            ("sim_days_per_s_cold".into(), (sim_days / cold_s).to_value()),
            ("samples_per_s".into(), (samples as f64 / warm_s).to_value()),
            ("events_per_s".into(), (events as f64 / warm_s).to_value()),
            ("samples_stored".into(), samples.to_value()),
            ("events_processed".into(), events.to_value()),
            ("digest_faults_on".into(), format!("{digest_on:016x}").to_value()),
            ("digest_faults_off".into(), format!("{digest_off:016x}").to_value()),
            ("digests_match".into(), true.to_value()),
            ("invariant_violations".into(), (violations as u64).to_value()),
        ]),
        &[
            "sim_days_per_s",
            "samples_per_s",
            "events_per_s",
            "digest_faults_on",
            "digest_faults_off",
            "digests_match",
            "invariant_violations",
        ],
    );
}
