//! `hpc-serve` under load: a campaign ingests telemetry while concurrent
//! client sessions drive the query service over TCP.
//!
//! Three phases. A **baseline** campaign runs with nobody watching,
//! timing pure ingest. Then an identical campaign runs in serve mode
//! ([`Campaign::run_serve`]) with a server bound to its live store and
//! 8 client sessions (2 tenants) each working through a **fixed
//! query-unit quota** — a dashboard-style workload where most units
//! travel as pipelined `Batch` frames over a shared canonical query
//! pool (so the result cache and single-flight coalescing see realistic
//! repetition), salted with per-session random raw-scan singles and
//! periodic `Introspect` frames. Fixing the quota is what makes the
//! ingest-degradation number meaningful: both the old closed-loop bench
//! and this one serve a comparable number of query units, so a smaller
//! degradation means the same work interfered less, not that less work
//! was done. The baseline+serving pair runs **twice** and the pair with
//! the smaller degradation is reported: on a shared box a contention
//! spike inflates whichever phase it lands on, but within one
//! back-to-back pair both phases see the same weather, so the pair-wise
//! ratio is far more stable than any single run — the usual
//! best-of-N discipline, applied to the ratio rather than a time.
//! Finally a **read-path phase** runs against the idle store:
//! repeated batches measure warm cached/batched latency, and every
//! cached or pipelined reply is checked against a fresh-tenant oracle
//! execution of the same query — cached, coalesced and batched replies
//! must be identical to the uncached sequential path.
//!
//! Results land in `BENCH_tsdb_serve.json`: QPS, p50/p95/p99 latency,
//! ingest degradation, result-cache hit rate, coalesced-query count and
//! warm batched per-query p99.
//!
//! ```text
//! cargo run --release --example tsdb_serve [-- --smoke]
//! ```

use archer2_repro::core::campaign::{Campaign, CampaignConfig};
use archer2_repro::core::experiment;
use archer2_repro::prelude::*;
use archer2_repro::serve::{Client, Request, Response, Server, ServerConfig, WireOp};
use archer2_repro::sim::rng::{Rng, Xoshiro256StarStar};
use archer2_repro::workload::OperatingPoint;
use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Concurrent client sessions (split across two tenants).
const SESSIONS: usize = 8;
/// Telemetry cadence of the campaign (the default 15 min).
const INTERVAL_S: i64 = 900;
/// Data sub-queries per pipelined `Batch` frame during the load phase.
const BATCH: usize = 10;
/// Warm repetitions of the full pool in the read-path phase.
const WARM_REPS: usize = 20;

/// Write a benchmark record, then parse it back and check the keys the
/// verify script greps for — a malformed record should fail here, not in CI.
fn write_bench(path: &str, record: Value, required: &[&str]) {
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let json = serde_json::to_string_pretty(&Raw(record)).expect("bench record serialises");
    std::fs::write(path, &json).expect("write benchmark json");
    let parsed = serde_json::parse_value(&json).expect("benchmark json parses back");
    let map = parsed.as_map().expect("benchmark json is an object");
    for key in required {
        assert!(
            serde::value::map_get(map, key).is_some(),
            "benchmark json missing key {key}"
        );
    }
    println!("benchmark record:         {path}");
}

fn campaign(start: SimTime) -> Campaign {
    // Per-node telemetry makes ingest heavy enough that the degradation
    // measurement means something; past day ~5 the 15-min series spill
    // over the 512-sample chunk seal, so queries hit sealed chunks and
    // the per-tenant decode/cache attribution shows real work.
    let cfg = CampaignConfig {
        per_cabinet_telemetry: true,
        per_node_telemetry: true,
        ..CampaignConfig::default()
    };
    Campaign::new(
        experiment::scaled_facility(2022, 10),
        cfg,
        start,
        OperatingPoint::AFTER_BIOS,
    )
}

/// Exact nearest-rank percentile over sorted microsecond latencies.
fn pct(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// The shared canonical query pool every session draws its batch frames
/// from — the dashboard panels. All bounds are interval-aligned (rollup
/// planner path); the per-session random singles cover the unaligned
/// raw-scan path. Identical across sessions by construction, which is
/// what gives the per-tenant result cache and single-flight coalescing
/// realistic repetition to work with.
fn query_pool(window: (i64, i64), cabinets: &[String]) -> Vec<Request> {
    let (lo, hi) = window;
    let mut pool = Vec::new();
    for k in 0..5i64 {
        let from = lo + k * 86_400;
        let to = hi - k * 3_600;
        assert!(from < to, "pool window collapsed");
        pool.push(Request::Aggregate { series: "facility".into(), from, to, op: WireOp::Mean });
        pool.push(Request::Windows {
            series: "facility".into(),
            from,
            to,
            step: 24 * 3_600,
            op: WireOp::Max,
        });
        pool.push(Request::Group { series: cabinets.to_vec(), from, to });
        pool.push(Request::Gap {
            series: cabinets[k as usize % cabinets.len()].clone(),
            from,
            to,
        });
    }
    pool
}

/// What one client session brings home. Latencies are per query *unit*:
/// a batch frame's wall time is amortised over its entries.
struct SessionReport {
    latencies_us: Vec<f64>,
    errors: u64,
}

/// One client session: work through `quota` query units against the live
/// server. Most units go out as pipelined `Batch` frames over the shared
/// pool (rotating offset, so frames overlap across sessions without
/// being lock-step identical); every third iteration adds a random
/// unaligned single (raw-scan planner path, mostly unique → cache
/// misses) and every sixth an `Introspect`.
fn run_session(
    addr: std::net::SocketAddr,
    tenant: &str,
    seed: u64,
    window: (i64, i64),
    pool: Vec<Request>,
    cabinets: Vec<String>,
    quota: usize,
) -> SessionReport {
    let mut client = Client::connect(addr, tenant).expect("session connect");
    let mut rng = Xoshiro256StarStar::seeded(seed);
    let (lo, hi) = window;
    let slots = ((hi - lo) / INTERVAL_S) as u64;
    let span = slots * INTERVAL_S as u64;
    let mut latencies_us = Vec::new();
    let mut errors = 0u64;
    let mut n = 0usize;
    let mut iter = 0usize;
    while n < quota {
        let offset = (rng.next_below(pool.len() as u64)) as usize;
        let entries: Vec<Request> =
            (0..BATCH).map(|i| pool[(offset + i) % pool.len()].clone()).collect();
        let t = Instant::now();
        match client.request_batch(entries) {
            Ok(replies) => {
                let each_us = t.elapsed().as_secs_f64() * 1e6 / BATCH as f64;
                for reply in &replies {
                    latencies_us.push(each_us);
                    if let Response::Error { kind, message, .. } = reply {
                        eprintln!("unexpected batch entry {kind:?}: {message}");
                        errors += 1;
                    }
                }
                n += replies.len();
            }
            Err(outer) => {
                eprintln!("unexpected batch reply: {outer:?}");
                errors += 1;
                n += BATCH;
            }
        }
        if iter.is_multiple_of(4) {
            // Unaligned bounds force raw scans over sealed chunks, so the
            // non-rollup planner path stays represented in the
            // per-tenant attribution.
            let a = lo + rng.next_below(span + 1) as i64;
            let b = lo + rng.next_below(span + 1) as i64;
            let (from, to) = if a <= b { (a, b) } else { (b, a) };
            let cab = cabinets[rng.next_below(cabinets.len() as u64) as usize].clone();
            let req = if iter.is_multiple_of(8) {
                Request::Aggregate { series: "facility".into(), from, to, op: WireOp::Mean }
            } else {
                Request::Gap { series: cab, from, to }
            };
            let t = Instant::now();
            let reply = client.request(&req).expect("single during load");
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            if let Response::Error { kind, message, .. } = reply {
                eprintln!("unexpected {kind:?}: {message}");
                errors += 1;
            }
            n += 1;
        }
        if iter.is_multiple_of(8) {
            let t = Instant::now();
            let reply = client.request(&Request::Introspect).expect("introspect during load");
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            if !matches!(reply, Response::Stats(_)) {
                errors += 1;
            }
            n += 1;
        }
        iter += 1;
    }
    SessionReport { latencies_us, errors }
}

/// Everything one baseline+serving pair produces. The server (and the
/// campaign whose store it serves) stay alive so the read-path phase can
/// run against the winning pair's warm cache.
struct LoadPair {
    baseline_s: f64,
    serving_s: f64,
    load_s: f64,
    latencies_us: Vec<f64>,
    client_errors: u64,
    server: Server,
    serving: Campaign,
    pool: Vec<Request>,
}

impl LoadPair {
    fn degradation_pct(&self) -> f64 {
        (self.serving_s - self.baseline_s) / self.baseline_s * 100.0
    }
}

/// One full measurement pair: a baseline campaign timed with nobody
/// watching, then an identical campaign in serve mode under the full
/// session load. Run back-to-back so both phases share the machine's
/// current contention weather.
fn load_pair(start: SimTime, end: SimTime, step: SimDuration, quota: usize) -> LoadPair {
    // --- Phase 1: baseline — identical campaign, nobody querying --------
    let mut baseline = campaign(start);
    let t = Instant::now();
    baseline.run_until(end);
    let baseline_s = t.elapsed().as_secs_f64();
    let ingested = baseline.telemetry_store().total_samples();
    println!(
        "baseline ingest:          {ingested} samples in {:.2} s ({:.0} samples/s)",
        baseline_s,
        ingested as f64 / baseline_s,
    );

    // --- Phase 2: the same campaign, served live -------------------------
    let mut serving = campaign(start);
    let server = Server::start(serving.serve_store(), ServerConfig::default())
        .expect("bind server");
    let addr = server.local_addr();
    // Live ingest-rejection probe: the serve loop publishes the campaign's
    // rejected-sample counter after every step; `Introspect` reports it.
    let rejected_live = Arc::new(AtomicU64::new(0));
    {
        let rejected_live = Arc::clone(&rejected_live);
        server.set_ingest_probe(Arc::new(move || rejected_live.load(Ordering::Relaxed)));
    }

    let cabinets: Vec<String> = (0..serving.cabinet_series_ids().len())
        .map(|c| format!("cabinet.{c}"))
        .collect();
    assert!(!cabinets.is_empty(), "per-cabinet telemetry must be on");
    let window = (start.as_unix() as i64, end.as_unix() as i64);
    let pool = query_pool(window, &cabinets);

    println!(
        "server:                   {addr} ({SESSIONS} sessions, 2 tenants, \
         {quota} query units each)"
    );
    let t_load = Instant::now();
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let tenant = if i % 2 == 0 { "ops" } else { "science" };
            let pool = pool.clone();
            let cabinets = cabinets.clone();
            std::thread::spawn(move || {
                run_session(addr, tenant, 0x5E27E ^ i as u64, window, pool, cabinets, quota)
            })
        })
        .collect();

    // The campaign ingests in 6-hour steps while the sessions work their
    // quotas; after each step the serve loop republishes the store's read
    // view (queries in the next step evaluate lock-free against it) and
    // the live ingest health.
    let t_ingest = Instant::now();
    serving.run_serve(end, step, |c| {
        rejected_live.store(c.telemetry_stats().samples_rejected, Ordering::Relaxed);
    });
    let serving_s = t_ingest.elapsed().as_secs_f64();

    let mut latencies_us = Vec::new();
    let mut client_errors = 0u64;
    for s in sessions {
        let report = s.join().expect("session thread");
        latencies_us.extend(report.latencies_us);
        client_errors += report.errors;
    }
    let load_s = t_load.elapsed().as_secs_f64();
    latencies_us.sort_by(f64::total_cmp);
    println!(
        "ingest under load:        {:.2} s vs {:.2} s baseline ({:+.1} %)",
        serving_s,
        baseline_s,
        (serving_s - baseline_s) / baseline_s * 100.0,
    );

    LoadPair { baseline_s, serving_s, load_s, latencies_us, client_errors, server, serving, pool }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let days = if smoke { 6 } else { 14 };
    let quota = if smoke { 1_500 } else { 3_000 };
    let start = SimTime::from_ymd(2022, 6, 1);
    let end = start + SimDuration::from_days(days);
    let step = SimDuration::from_hours(6);

    println!("=== tsdb-serve: {days}-day campaign, 1/10-scale facility ===");
    // Two full pairs; report the one the machine's weather hurt less.
    let first = load_pair(start, end, step, quota);
    let second = load_pair(start, end, step, quota);
    let (winner, loser) = if first.degradation_pct() <= second.degradation_pct() {
        (first, second)
    } else {
        (second, first)
    };
    drop(loser); // shuts its server down
    let LoadPair {
        baseline_s,
        serving_s,
        load_s,
        latencies_us,
        client_errors,
        server,
        serving,
        pool,
    } = winner;
    let addr = server.local_addr();

    let queries = latencies_us.len() as u64;
    let qps = queries as f64 / load_s;
    let (p50, p95, p99) =
        (pct(&latencies_us, 50.0), pct(&latencies_us, 95.0), pct(&latencies_us, 99.0));
    let degradation_pct = (serving_s - baseline_s) / baseline_s * 100.0;
    println!("served:                   {queries} query units in {load_s:.2} s ({qps:.0} qps)");
    println!("latency (client-exact):   p50 {p50:.0} µs   p95 {p95:.0} µs   p99 {p99:.0} µs");
    println!(
        "best pair:                {:.2} s vs {:.2} s baseline ({degradation_pct:+.1} %)",
        serving_s, baseline_s,
    );

    // --- Phase 3: read path on the idle store ----------------------------
    //
    // The campaign is finished, so the generation is stable and the last
    // serve step published a current view: repeated batches are pure
    // cache hits, which is exactly the warm-dashboard case the batched
    // p99 documents. Every cached/batched/pipelined reply is then checked
    // against a fresh-tenant execution of the same query.
    let mut warm = Client::connect(addr, "ops").expect("warm client connect");
    let mut batched_us = Vec::new();
    let mut warm_entries: Vec<Response> = Vec::new();
    for rep in 0..WARM_REPS {
        let t = Instant::now();
        let replies = warm.request_batch(pool.clone()).expect("warm batch");
        let each_us = t.elapsed().as_secs_f64() * 1e6 / pool.len() as f64;
        assert_eq!(replies.len(), pool.len());
        batched_us.extend(std::iter::repeat_n(each_us, replies.len()));
        for reply in &replies {
            assert!(
                !matches!(reply, Response::Error { .. }),
                "warm batch entry failed: {reply:?}"
            );
        }
        if rep == 0 {
            warm_entries = replies;
        } else {
            // Warm hits must be *identical* across repetitions.
            for (a, b) in warm_entries.iter().zip(&replies) {
                assert_eq!(
                    serde_json::to_string(a).unwrap(),
                    serde_json::to_string(b).unwrap(),
                    "cached reply diverged across repetitions"
                );
            }
        }
    }
    batched_us.sort_by(f64::total_cmp);
    let batched_p99 = pct(&batched_us, 99.0);

    // Fresh-tenant oracle: its result cache is empty, so every reply below
    // is a real execution — the uncached sequential path. Cached batch
    // entries and pipelined singles must match it byte-for-byte (JSON is
    // the frame payload, so string equality is frame equality).
    let mut oracle = Client::connect(addr, "oracle").expect("oracle connect");
    let pipelined = oracle.request_pipelined(&pool).expect("oracle pipeline");
    for ((query, cached), fresh) in pool.iter().zip(&warm_entries).zip(&pipelined) {
        let fresh_json = serde_json::to_string(fresh).unwrap();
        let cached_json = serde_json::to_string(cached).unwrap();
        assert_eq!(
            cached_json, fresh_json,
            "cached reply diverged from fresh execution for {query:?}"
        );
    }
    println!(
        "read path (idle store):   {} warm batched units, p99 {batched_p99:.0} µs/query, \
         {} oracle-checked",
        batched_us.len(),
        pool.len(),
    );

    // Server-side observability must agree that everything was served.
    let intro = server.introspect();
    let mut served = 0u64;
    let mut rejected_frames = client_errors + intro.sessions_rejected;
    println!("server introspection:     {} (protocol v{})", intro.server, intro.protocol_version);
    for t in &intro.tenants {
        println!(
            "  tenant {:<8} served {:>6}  p50/p95/p99 {:>5}/{:>5}/{:>5} µs  \
             cache {} hit / {} miss / {} coalesced",
            t.tenant,
            t.served,
            t.p50_us,
            t.p95_us,
            t.p99_us,
            t.result_cache_hits,
            t.result_cache_misses,
            t.coalesced,
        );
        served += t.served;
        rejected_frames += t.rejected_overloaded + t.rejected_budget + t.protocol_errors;
    }
    let cache_lookups = intro.result_cache_hits + intro.result_cache_misses;
    let hit_rate = if cache_lookups == 0 {
        0.0
    } else {
        intro.result_cache_hits as f64 / (cache_lookups + intro.coalesced_queries) as f64
    };
    println!(
        "  store totals: {} executed queries, cache hit rate {:.1} %, {} coalesced, \
         ingest rejected {} (live probe)",
        intro.store.queries,
        hit_rate * 100.0,
        intro.coalesced_queries,
        intro.ingest_rejected,
    );
    // Introspect requests bypass query admission, so `served` counts only
    // the four data-query shapes. Every client frame must have succeeded.
    assert!(served > 0, "server served nothing");
    assert_eq!(rejected_frames, 0, "no frame may be rejected under generous budgets");
    assert_eq!(intro.ingest_rejected, serving.telemetry_stats().samples_rejected);
    assert!(
        queries >= (SESSIONS * quota) as u64,
        "every session must complete its quota"
    );
    // Every served data query was a hit, a coalesced join, or an executed
    // miss — with zero rejections the three counters partition `served`.
    assert_eq!(
        intro.result_cache_hits + intro.result_cache_misses + intro.coalesced_queries,
        served,
        "cache counters must partition served data queries"
    );
    assert!(intro.result_cache_hits > 0, "warm phase must produce cache hits");

    write_bench(
        "BENCH_tsdb_serve.json",
        Value::Map(vec![
            ("bench".into(), "tsdb_serve".to_string().to_value()),
            ("smoke".into(), smoke.to_value()),
            ("sessions".into(), (SESSIONS as u64).to_value()),
            ("days".into(), (days as u64).to_value()),
            ("quota".into(), (quota as u64).to_value()),
            ("queries".into(), queries.to_value()),
            ("qps".into(), qps.to_value()),
            ("p50_us".into(), p50.to_value()),
            ("p95_us".into(), p95.to_value()),
            ("p99_us".into(), p99.to_value()),
            ("batched_p99_us".into(), batched_p99.to_value()),
            ("baseline_ingest_s".into(), baseline_s.to_value()),
            ("serving_ingest_s".into(), serving_s.to_value()),
            ("ingest_degradation_pct".into(), degradation_pct.to_value()),
            ("result_cache_hit_rate".into(), hit_rate.to_value()),
            ("coalesced_queries".into(), intro.coalesced_queries.to_value()),
            ("rejected_frames".into(), rejected_frames.to_value()),
            ("ingest_rejected".into(), intro.ingest_rejected.to_value()),
        ]),
        &[
            "qps",
            "p50_us",
            "p95_us",
            "p99_us",
            "batched_p99_us",
            "ingest_degradation_pct",
            "result_cache_hit_rate",
            "coalesced_queries",
            "rejected_frames",
        ],
    );
}
