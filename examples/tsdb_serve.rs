//! `hpc-serve` under load: a campaign ingests telemetry while concurrent
//! client sessions hammer the query service over TCP.
//!
//! Two phases. A **baseline** campaign runs with nobody watching, timing
//! pure ingest. Then an identical campaign runs in serve mode
//! ([`Campaign::run_serve`]) with a server bound to its live store and
//! 8 client sessions (2 tenants) issuing a mixed aggregate / windows /
//! group / gap-coverage / introspection workload the whole time. The
//! load generator measures client-side: every reply is timed, percentiles
//! are exact (full sorted latency vector, not histogram bins), and any
//! typed error or rejection fails the run — admission budgets are
//! deliberately generous here, so every frame must be served.
//!
//! Results land in `BENCH_tsdb_serve.json`: QPS, p50/p95/p99 latency,
//! and how much the serving load degraded ingest throughput.
//!
//! ```text
//! cargo run --release --example tsdb_serve [-- --smoke]
//! ```

use archer2_repro::core::campaign::{Campaign, CampaignConfig};
use archer2_repro::core::experiment;
use archer2_repro::prelude::*;
use archer2_repro::serve::{Client, Request, Response, Server, ServerConfig, WireOp};
use archer2_repro::sim::rng::{Rng, Xoshiro256StarStar};
use archer2_repro::workload::OperatingPoint;
use serde::{Serialize, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Concurrent client sessions (split across two tenants).
const SESSIONS: usize = 8;
/// Telemetry cadence of the campaign (the default 15 min).
const INTERVAL_S: i64 = 900;

/// Write a benchmark record, then parse it back and check the keys the
/// verify script greps for — a malformed record should fail here, not in CI.
fn write_bench(path: &str, record: Value, required: &[&str]) {
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let json = serde_json::to_string_pretty(&Raw(record)).expect("bench record serialises");
    std::fs::write(path, &json).expect("write benchmark json");
    let parsed = serde_json::parse_value(&json).expect("benchmark json parses back");
    let map = parsed.as_map().expect("benchmark json is an object");
    for key in required {
        assert!(
            serde::value::map_get(map, key).is_some(),
            "benchmark json missing key {key}"
        );
    }
    println!("benchmark record:         {path}");
}

fn campaign(start: SimTime) -> Campaign {
    // Per-node telemetry makes ingest heavy enough that the degradation
    // measurement means something; past day ~5 the 15-min series spill
    // over the 512-sample chunk seal, so queries hit sealed chunks and
    // the per-tenant decode/cache attribution shows real work.
    let cfg = CampaignConfig {
        per_cabinet_telemetry: true,
        per_node_telemetry: true,
        ..CampaignConfig::default()
    };
    Campaign::new(
        experiment::scaled_facility(2022, 10),
        cfg,
        start,
        OperatingPoint::AFTER_BIOS,
    )
}

/// Exact nearest-rank percentile over sorted microsecond latencies.
fn pct(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// What one client session brings home.
struct SessionReport {
    latencies_us: Vec<f64>,
    errors: u64,
}

/// One client session: mixed queries against the live server until the
/// campaign finishes *and* this session has done its minimum share.
fn run_session(
    addr: std::net::SocketAddr,
    tenant: &str,
    seed: u64,
    window: (i64, i64),
    cabinets: Vec<String>,
    stop: Arc<AtomicBool>,
    min_queries: usize,
) -> SessionReport {
    let mut client = Client::connect(addr, tenant).expect("session connect");
    let mut rng = Xoshiro256StarStar::seeded(seed);
    let (lo, hi) = window;
    let slots = ((hi - lo) / INTERVAL_S) as u64;
    let mut latencies_us = Vec::new();
    let mut errors = 0u64;
    let mut n = 0usize;
    while !stop.load(Ordering::Acquire) || n < min_queries {
        // Interval-aligned bounds resolve from rollups alone; unaligned
        // bounds (every other query) force raw scans over sealed chunks,
        // so both planner paths show up in the per-tenant attribution.
        let align = if n.is_multiple_of(2) { INTERVAL_S } else { 1 };
        let span = slots * INTERVAL_S as u64;
        let a = lo + (rng.next_below(span + 1) as i64 / align) * align;
        let b = lo + (rng.next_below(span + 1) as i64 / align) * align;
        let (from, to) = if a <= b { (a, b) } else { (b, a) };
        let cab = cabinets[rng.next_below(cabinets.len() as u64) as usize].clone();
        let req = match n % 5 {
            0 => Request::Aggregate { series: "facility".into(), from, to, op: WireOp::Mean },
            1 => Request::Windows {
                series: "facility".into(),
                from,
                to,
                step: 3_600,
                op: WireOp::Max,
            },
            2 => Request::Group { series: cabinets.clone(), from, to },
            3 => Request::Gap { series: cab, from, to },
            _ => Request::Introspect,
        };
        let t = Instant::now();
        let reply = client.request(&req).expect("request during load");
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        if let Response::Error { kind, message, .. } = reply {
            eprintln!("unexpected {kind:?}: {message}");
            errors += 1;
        }
        n += 1;
    }
    SessionReport { latencies_us, errors }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let days = if smoke { 6 } else { 14 };
    let min_queries = if smoke { 150 } else { 400 };
    let start = SimTime::from_ymd(2022, 6, 1);
    let end = start + SimDuration::from_days(days);
    let step = SimDuration::from_hours(6);

    // --- Phase 1: baseline — identical campaign, nobody querying --------
    println!("=== tsdb-serve: {days}-day campaign, 1/10-scale facility ===");
    let mut baseline = campaign(start);
    let t = Instant::now();
    baseline.run_until(end);
    let baseline_s = t.elapsed().as_secs_f64();
    let ingested = baseline.telemetry_store().total_samples();
    println!(
        "baseline ingest:          {ingested} samples in {:.2} s ({:.0} samples/s)",
        baseline_s,
        ingested as f64 / baseline_s,
    );

    // --- Phase 2: the same campaign, served live -------------------------
    let mut serving = campaign(start);
    let server = Server::start(serving.serve_store(), ServerConfig::default())
        .expect("bind server");
    let addr = server.local_addr();
    // Live ingest-rejection probe: the serve loop publishes the campaign's
    // rejected-sample counter after every step; `Introspect` reports it.
    let rejected_live = Arc::new(AtomicU64::new(0));
    {
        let rejected_live = Arc::clone(&rejected_live);
        server.set_ingest_probe(Arc::new(move || rejected_live.load(Ordering::Relaxed)));
    }

    let cabinets: Vec<String> = (0..serving.cabinet_series_ids().len())
        .map(|c| format!("cabinet.{c}"))
        .collect();
    assert!(!cabinets.is_empty(), "per-cabinet telemetry must be on");
    let window = (start.as_unix() as i64, end.as_unix() as i64);
    let stop = Arc::new(AtomicBool::new(false));

    println!("server:                   {addr} ({SESSIONS} sessions, 2 tenants)");
    let t_load = Instant::now();
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let tenant = if i % 2 == 0 { "ops" } else { "science" };
            let cabinets = cabinets.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                run_session(
                    addr,
                    tenant,
                    0x5E27E ^ i as u64,
                    window,
                    cabinets,
                    stop,
                    min_queries,
                )
            })
        })
        .collect();

    // The campaign ingests in 6-hour steps while the sessions hammer away;
    // after each step the serve loop publishes live ingest health.
    let t_ingest = Instant::now();
    serving.run_serve(end, step, |c| {
        rejected_live.store(c.telemetry_stats().samples_rejected, Ordering::Relaxed);
    });
    let serving_s = t_ingest.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);

    let mut latencies_us = Vec::new();
    let mut client_errors = 0u64;
    for s in sessions {
        let report = s.join().expect("session thread");
        latencies_us.extend(report.latencies_us);
        client_errors += report.errors;
    }
    let load_s = t_load.elapsed().as_secs_f64();
    latencies_us.sort_by(f64::total_cmp);

    let queries = latencies_us.len() as u64;
    let qps = queries as f64 / load_s;
    let (p50, p95, p99) = (pct(&latencies_us, 50.0), pct(&latencies_us, 95.0), pct(&latencies_us, 99.0));
    let degradation_pct = (serving_s - baseline_s) / baseline_s * 100.0;
    println!(
        "served:                   {queries} queries in {load_s:.2} s ({qps:.0} qps)",
    );
    println!(
        "latency (client-exact):   p50 {p50:.0} µs   p95 {p95:.0} µs   p99 {p99:.0} µs",
    );
    println!(
        "ingest under load:        {:.2} s vs {:.2} s baseline ({degradation_pct:+.1} %)",
        serving_s, baseline_s,
    );

    // Server-side observability must agree that everything was served.
    let intro = server.introspect();
    let mut served = 0u64;
    let mut rejected_frames = client_errors + intro.sessions_rejected;
    println!("server introspection:     {} (protocol v{})", intro.server, intro.protocol_version);
    for t in &intro.tenants {
        println!(
            "  tenant {:<8} served {:>6}  p50/p95/p99 {:>5}/{:>5}/{:>5} µs  \
             chunks {} decoded / {} cached,  {} samples scanned",
            t.tenant,
            t.served,
            t.p50_us,
            t.p95_us,
            t.p99_us,
            t.query.chunks_decoded,
            t.query.chunk_cache_hits,
            t.query.samples_scanned,
        );
        served += t.served;
        rejected_frames += t.rejected_overloaded + t.rejected_budget + t.protocol_errors;
    }
    println!(
        "  store totals: {} queries, ingest rejected {} (live probe)",
        intro.store.queries, intro.ingest_rejected,
    );
    // Introspect requests bypass query admission, so `served` counts only
    // the four data-query shapes. Every client frame must have succeeded.
    assert!(served > 0, "server served nothing");
    assert_eq!(rejected_frames, 0, "no frame may be rejected under generous budgets");
    assert_eq!(intro.ingest_rejected, serving.telemetry_stats().samples_rejected);
    assert!(
        queries >= (SESSIONS * min_queries) as u64,
        "every session must reach its minimum share"
    );

    write_bench(
        "BENCH_tsdb_serve.json",
        Value::Map(vec![
            ("bench".into(), "tsdb_serve".to_string().to_value()),
            ("smoke".into(), smoke.to_value()),
            ("sessions".into(), (SESSIONS as u64).to_value()),
            ("days".into(), (days as u64).to_value()),
            ("queries".into(), queries.to_value()),
            ("qps".into(), qps.to_value()),
            ("p50_us".into(), p50.to_value()),
            ("p95_us".into(), p95.to_value()),
            ("p99_us".into(), p99.to_value()),
            ("baseline_ingest_s".into(), baseline_s.to_value()),
            ("serving_ingest_s".into(), serving_s.to_value()),
            ("ingest_degradation_pct".into(), degradation_pct.to_value()),
            ("rejected_frames".into(), rejected_frames.to_value()),
            ("ingest_rejected".into(), intro.ingest_rejected.to_value()),
        ]),
        &["qps", "p50_us", "p95_us", "p99_us", "ingest_degradation_pct", "rejected_frames"],
    );
}
