//! Fault storm: a "bad week" of correlated facility failures — cabinet PSU
//! trips, a CDU cooling-loop outage draining whole cabinets, switch
//! failures stranding their endpoint nodes, and flaky cabinet power meters
//! (dropouts, stuck-at-last readings, spike outliers) on top.
//!
//! The campaign runs the degraded facility at full backlog and then
//! reports what an operator would ask for afterwards:
//!
//! * per-domain availability, MTBF and MTTR from the health monitor;
//! * job accounting — every submission must end up completed, requeued,
//!   abandoned or still queued (the no-lost-jobs invariant);
//! * facility energy and scope-2 emissions for the week, with an
//!   uncertainty band derived from the telemetry coverage the faulty
//!   meters actually achieved.
//!
//! ```text
//! cargo run --release --example fault_storm [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the span so CI can run the whole path in seconds. The
//! run emits `BENCH_fault_storm.json`, including the fault-schedule and
//! telemetry digests the verify gate compares across two same-seed runs.

use archer2_repro::core::campaign::{Campaign, CampaignConfig, FaultInjectionConfig};
use archer2_repro::core::experiment;
use archer2_repro::emissions::Scope2Accountant;
use archer2_repro::faults::{DomainClass, DomainFaultConfig, DomainRate, MeterFaultConfig};
use archer2_repro::grid::IntensityScenario;
use archer2_repro::prelude::*;
use archer2_repro::tsdb::SanitizeConfig;
use archer2_repro::workload::OperatingPoint;
use serde::{Serialize, Value};

/// Write a benchmark record, then parse it back and check the keys the
/// verify script greps for — a malformed record should fail here, not in CI.
fn write_bench(path: &str, record: Value, required: &[&str]) {
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let json = serde_json::to_string_pretty(&Raw(record)).expect("bench record serialises");
    std::fs::write(path, &json).expect("write benchmark json");
    let parsed = serde_json::parse_value(&json).expect("benchmark json parses back");
    let map = parsed.as_map().expect("benchmark json is an object");
    for key in required {
        assert!(
            serde::value::map_get(map, key).is_some(),
            "benchmark json missing key {key}"
        );
    }
    println!("benchmark record:         {path}");
}

/// The storm: every domain class fails at rates far above the defaults, so
/// a single week exercises the full correlated-failure machinery on the
/// 1/10-scale test facility.
fn storm_faults() -> FaultInjectionConfig {
    FaultInjectionConfig {
        domains: DomainFaultConfig {
            node: DomainRate { mtbf_hours: 400.0, repair_mean_hours: 8.0, repair_sigma: 0.5 },
            cabinet: DomainRate { mtbf_hours: 250.0, repair_mean_hours: 4.0, repair_sigma: 0.4 },
            cdu: DomainRate { mtbf_hours: 120.0, repair_mean_hours: 6.0, repair_sigma: 0.4 },
            switch: DomainRate { mtbf_hours: 1_500.0, repair_mean_hours: 4.0, repair_sigma: 0.4 },
            ..DomainFaultConfig::default()
        },
        horizon: SimDuration::from_days(14),
        meters: Some(MeterFaultConfig {
            dropouts_per_month: 12.0,
            stuck_per_month: 6.0,
            spikes_per_month: 20.0,
            ..MeterFaultConfig::default()
        }),
        sanitize: SanitizeConfig::default(),
    }
}

/// FNV-1a over every stored (timestamp, value) pair of the given series:
/// two same-seed runs must produce bit-identical telemetry.
fn telemetry_digest(campaign: &Campaign) -> u64 {
    let store = campaign.telemetry_store();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    let mut sids = vec![campaign.facility_series_id()];
    sids.extend_from_slice(campaign.cabinet_series_ids());
    for sid in sids {
        let samples = store
            .with_series(sid, |s| s.scan(i64::MIN, i64::MAX))
            .expect("registered series");
        for (ts, v) in samples {
            fold(ts as u64);
            fold(v.to_bits());
        }
    }
    h
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let days = if smoke { 2 } else { 7 };

    println!("=== fault storm: {days} bad days on the 1/10-scale facility ===");
    let facility = experiment::scaled_facility(2022, 10);
    let start = SimTime::from_ymd(2022, 3, 1);
    let end = start + SimDuration::from_days(days);
    let cfg = CampaignConfig {
        per_cabinet_telemetry: true,
        faults: Some(storm_faults()),
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(facility, cfg, start, OperatingPoint::AFTER_BIOS);
    campaign.run_until(end);

    // --- Per-domain availability -----------------------------------------
    let at_s = days * 86_400;
    let health = campaign.health().expect("faults enabled");
    println!();
    println!("domain      failures  repairs  availability     MTBF        MTTR");
    for (label, class) in [
        ("nodes", DomainClass::Node),
        ("cabinets", DomainClass::Cabinet),
        ("CDU loops", DomainClass::Cdu),
        ("switches", DomainClass::Switch),
    ] {
        let tr = health.class(class);
        println!(
            "{label:<12}{:>8}{:>9}{:>13.3} %{:>9.0} h{:>10.1} h",
            tr.failures(),
            tr.repairs(),
            tr.availability(at_s) * 100.0,
            tr.mtbf_hours(at_s),
            tr.mttr_hours(at_s),
        );
    }
    let schedule = campaign.fault_schedule().expect("faults enabled");
    let (n_down, c_down, d_down, s_down) = schedule.down_counts();
    println!(
        "schedule: {} events over the {}-day horizon (down: {n_down} node / {c_down} cabinet / {d_down} CDU / {s_down} switch)",
        schedule.len(),
        14,
    );

    // --- Job accounting: the no-lost-jobs invariant ----------------------
    let stats = campaign.scheduler_stats();
    println!();
    println!(
        "jobs: {} submitted, {} completed, {} killed by faults ({} requeued-and-finished elsewhere, {} abandoned after budget), {} backfilled",
        stats.submitted,
        stats.completed,
        stats.killed,
        stats.killed - stats.abandoned,
        stats.abandoned,
        stats.backfilled,
    );
    let violations = campaign.verify_invariants();
    assert!(violations.is_empty(), "invariants violated: {violations:?}");
    println!("invariants: all hold (no lost jobs, node & energy conservation)");
    println!(
        "utilisation through the storm: {:.1} % ({} nodes still offline at the end)",
        campaign.utilisation() * 100.0,
        campaign.offline_nodes(),
    );

    // --- Telemetry: what the faulty meters delivered ---------------------
    let sensors = campaign.sensor_stats().expect("meter faults enabled");
    println!();
    println!(
        "meters: {} samples stored, {} dropped (dropouts), {} quarantined ({} out-of-range spikes, {} stuck runs, {} non-monotonic)",
        sensors.sanitize.stored,
        sensors.dropped,
        sensors.sanitize.quarantined(),
        sensors.sanitize.out_of_range,
        sensors.sanitize.stuck,
        sensors.sanitize.non_monotonic,
    );

    // Gap-aware readback per cabinet: aggregate over present samples plus
    // the coverage fraction actually achieved.
    let n_cabinets = campaign.cabinet_series_ids().len();
    let mut metered_kw = 0.0;
    let mut uncertainty_kw = 0.0;
    let mut worst_coverage = 1.0f64;
    for i in 0..n_cabinets {
        let g = campaign.cabinet_window_gap(i, start, end).expect("cabinet series");
        // The unmeasured fraction of the window could have drawn anything
        // between 0 and the observed mean level — a conservative ± band.
        metered_kw += g.mean() * g.coverage;
        uncertainty_kw += g.mean() * (1.0 - g.coverage);
        worst_coverage = worst_coverage.min(g.coverage);
        println!(
            "cabinet {i}: mean {:.0} kW over {:.1} % coverage ({} quarantined)",
            g.mean(),
            g.coverage * 100.0,
            g.quarantined,
        );
    }
    let estimate_kw = metered_kw + uncertainty_kw; // coverage-weighted + band centre
    let true_kw = campaign.power_series().mean();
    println!(
        "metered estimate: {estimate_kw:.0} ± {uncertainty_kw:.0} kW (ground truth {true_kw:.0} kW, worst cabinet coverage {:.1} %)",
        worst_coverage * 100.0,
    );
    assert!(
        (true_kw - estimate_kw).abs() <= uncertainty_kw + 0.1 * true_kw,
        "metered estimate {estimate_kw} strayed beyond its band from {true_kw}"
    );

    // --- Energy & emissions with the coverage band -----------------------
    let hours = days as f64 * 24.0;
    let energy_mwh = true_kw * hours / 1000.0;
    let accountant = Scope2Accountant::new(IntensityScenario::UkGrid2022);
    let emissions_t = accountant.emissions_t(campaign.power_series());
    let rel_band = uncertainty_kw / estimate_kw.max(1.0);
    println!();
    println!(
        "energy:    {energy_mwh:.1} MWh over the storm ({:.1} % telemetry uncertainty)",
        rel_band * 100.0
    );
    println!(
        "emissions: {emissions_t:.2} tCO2 ± {:.2} t (scope 2, UK grid 2022)",
        emissions_t * rel_band
    );

    // --- Determinism digests for the verify gate -------------------------
    let sched_digest = schedule.digest();
    let telem_digest = telemetry_digest(&campaign);
    println!();
    println!("fault schedule digest: {sched_digest:016x}");
    println!("telemetry digest:      {telem_digest:016x}");

    write_bench(
        "BENCH_fault_storm.json",
        Value::Map(vec![
            ("bench".into(), "fault_storm".to_string().to_value()),
            ("smoke".into(), smoke.to_value()),
            ("days".into(), (days as u64).to_value()),
            ("schedule_digest".into(), format!("{sched_digest:016x}").to_value()),
            ("telemetry_digest".into(), format!("{telem_digest:016x}").to_value()),
            ("schedule_events".into(), (schedule.len() as u64).to_value()),
            ("node_downs".into(), n_down.to_value()),
            ("cabinet_downs".into(), c_down.to_value()),
            ("cdu_downs".into(), d_down.to_value()),
            ("switch_downs".into(), s_down.to_value()),
            ("jobs_submitted".into(), stats.submitted.to_value()),
            ("jobs_completed".into(), stats.completed.to_value()),
            ("jobs_killed".into(), stats.killed.to_value()),
            ("jobs_abandoned".into(), stats.abandoned.to_value()),
            ("samples_stored".into(), sensors.sanitize.stored.to_value()),
            ("samples_dropped".into(), sensors.dropped.to_value()),
            ("samples_quarantined".into(), sensors.sanitize.quarantined().to_value()),
            ("worst_coverage".into(), worst_coverage.to_value()),
            ("mean_kw".into(), true_kw.to_value()),
            ("energy_mwh".into(), energy_mwh.to_value()),
            ("emissions_tco2".into(), emissions_t.to_value()),
            ("invariant_violations".into(), (violations.len() as u64).to_value()),
        ]),
        &[
            "schedule_digest",
            "telemetry_digest",
            "mean_kw",
            "emissions_tco2",
            "invariant_violations",
        ],
    );
}
