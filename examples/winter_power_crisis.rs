//! The paper's narrative end to end: reproduce Figures 1–3 and the §5
//! conclusions — baseline, the BIOS determinism change (−210 kW), the
//! 2.0 GHz default (−480 kW), 21 % total — in one run.
//!
//! ```text
//! cargo run --release --example winter_power_crisis [scale]
//! ```
//!
//! `scale` divides the facility (default 10 for speed; 1 = full 5,860
//! nodes). Reported kilowatts are always full-facility.

use archer2_repro::core::experiment;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be an integer"))
        .unwrap_or(10);
    let seed = 2022;

    println!("Reproducing the ARCHER2 energy-efficiency campaign (seed {seed}, 1/{scale} scale)");
    println!();

    println!("--- Figure 1: baseline, Dec 2021 - Apr 2022 ---");
    let fig1 = experiment::figure1(seed, scale);
    println!("{}", fig1.render());
    println!(
        "baseline mean: {:.0} kW (paper: 3,220 kW) at {:.1}% utilisation",
        fig1.summary.means[0],
        fig1.utilisation * 100.0
    );
    println!();

    println!("--- Figure 2: BIOS power -> performance determinism, May 2022 ---");
    let fig2 = experiment::figure2(seed, scale);
    println!("{}", fig2.render());
    println!(
        "settled means: {:.0} kW -> {:.0} kW (paper: 3,220 -> 3,010 kW)",
        fig2.settled_means_kw[0], fig2.settled_means_kw[1]
    );
    println!();

    println!("--- Table 3: determinism-mode benchmark impact ---");
    println!("{}", experiment::table3(seed).render());

    println!("--- Figure 3: default CPU frequency -> 2.0 GHz, Dec 2022 ---");
    let fig3 = experiment::figure3(seed, scale);
    println!("{}", fig3.render());
    println!(
        "settled means: {:.0} kW -> {:.0} kW (paper: 3,010 -> 2,530 kW)",
        fig3.settled_means_kw[0], fig3.settled_means_kw[1]
    );
    println!();

    println!("--- Table 4: frequency-cap benchmark impact ---");
    println!("{}", experiment::table4(seed).render());

    println!("--- Section 5 conclusions ---");
    let c = experiment::conclusions(seed, &fig2, &fig3);
    println!(
        "total saving:       {:.0} kW ({:.1}% of baseline; paper: ~690 kW, 21%)",
        c.total_saving_kw,
        c.total_drop * 100.0
    );
    println!(
        "BIOS change:        {:.1}% reduction (paper: 6.5%)",
        c.bios_drop * 100.0
    );
    println!(
        "frequency change:   {:.0} kW reduction (paper: ~480 kW)",
        c.freq_drop_kw
    );
    println!(
        "idle node draw:     {:.0}% of a loaded node (paper: ~50%)",
        c.idle_fraction * 100.0
    );
    println!(
        "switch power:       {:.0}-{:.0} W irrespective of load (paper: 200-250 W)",
        c.switch_band_w.0, c.switch_band_w.1
    );
}
