//! Quickstart: build the ARCHER2 facility, print its hardware and power
//! budget (Tables 1–2 of the paper), then simulate one week of production
//! and report the compute-cabinet power draw.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use archer2_repro::core::campaign::{Campaign, CampaignConfig};
use archer2_repro::core::experiment;
use archer2_repro::core::facility::Archer2Facility;
use archer2_repro::prelude::*;
use archer2_repro::workload::OperatingPoint;

fn main() {
    // --- Table 1: what the machine is -----------------------------------
    println!("=== ARCHER2 hardware summary (Table 1) ===");
    println!("{}", experiment::table1());
    println!();

    // --- Table 2: where the power goes -----------------------------------
    println!("=== Per-component power budget (Table 2) ===");
    println!("{}", experiment::table2(2022).render());

    // --- One simulated week of production -------------------------------
    // Scale 10 keeps the example fast; reported kilowatts are full-facility.
    let facility = experiment::scaled_facility(2022, 10);
    let scale_up = 5860.0 / facility.nodes() as f64;
    let start = SimTime::from_ymd(2022, 1, 10);
    let mut campaign = Campaign::new(
        facility,
        CampaignConfig::default(),
        start,
        OperatingPoint::ORIGINAL,
    );
    println!("simulating one week of production workload...");
    campaign.run_until(start + SimDuration::from_days(7));

    let mean_kw = campaign.power_series().mean() * scale_up;
    let (started, _) = campaign.job_counts();
    println!();
    println!("=== One week of simulated production ===");
    println!("jobs started:                {started}");
    println!("utilisation:                 {:.1}%", campaign.utilisation() * 100.0);
    println!("mean compute-cabinet power:  {mean_kw:.0} kW (paper baseline: 3,220 kW)");
    println!(
        "energy used by compute cabinets: {:.0} MWh",
        campaign.power_series().integral_unit_hours() * scale_up / 1000.0
    );

    // --- And what the full facility looks like closed-form ---------------
    let full = Archer2Facility::new(2022);
    let loaded = full.loaded_budget(OperatingPoint::ORIGINAL);
    println!();
    println!(
        "closed-form fully-loaded facility: {:.0} kW ({:.0}% in compute nodes)",
        loaded.total_kw(),
        100.0 * loaded.nodes_kw / loaded.total_kw()
    );
}
