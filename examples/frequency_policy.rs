//! The per-application frequency policy the paper actually deployed (§4.2):
//! a blanket 2.0 GHz default, with the module system resetting codes whose
//! expected slowdown exceeds 10 % back to 2.25 GHz+turbo.
//!
//! Prints the full frequency sweep for every catalog benchmark (an
//! extension of Table 4 down to 1.5 GHz), the policy decision per code, and
//! a campaign-level comparison of blanket vs auto-revert policies.
//!
//! ```text
//! cargo run --release --example frequency_policy
//! ```

use archer2_repro::core::experiment;

fn main() {
    let seed = 2022;

    println!("=== Frequency sweep per benchmark (perf / energy vs 2.25 GHz+turbo) ===");
    println!(
        "{:<24} {:>7} {:>7} {:>7}   {:>7} {:>7} {:>7}   module policy",
        "benchmark", "p(1.5)", "p(2.0)", "p(2.25)", "e(1.5)", "e(2.0)", "e(2.25)"
    );
    for row in experiment::frequency_sweep(seed) {
        let policy = if row.perf[1] < 0.90 {
            "reset to 2.25 GHz+turbo"
        } else {
            "default 2.0 GHz"
        };
        println!(
            "{:<24} {:>7.2} {:>7.2} {:>7.2}   {:>7.2} {:>7.2} {:>7.2}   {}",
            row.benchmark,
            row.perf[0],
            row.perf[1],
            row.perf[2],
            row.energy[0],
            row.energy[1],
            row.energy[2],
            policy
        );
    }
    println!();
    println!("(The paper: \"applications where the reduction in frequency is expected to");
    println!(" have a large negative impact on performance (>10%) had their module setup");
    println!(" altered to reset the CPU frequency to 2.25 GHz\".)");
    println!();

    println!("=== Campaign-level policy ablation (14 simulated days at 2.0 GHz default) ===");
    for row in experiment::policy_ablation(seed, 10) {
        println!(
            "  {:<26} mean {:>5.0} kW, {:>4.1}% of jobs reverted to turbo",
            row.policy,
            row.mean_kw,
            row.revert_fraction * 100.0
        );
    }
    println!();
    println!("Blanket capping saves the most power; the auto-revert deployment gives most");
    println!("of the saving while shielding the codes that pay heavily for the cap —");
    println!("exactly the trade-off the service chose.");
}
