//! Run the complete reproduction contract and print the checklist.
//!
//! Exits non-zero if any check fails, so this doubles as a CI gate:
//!
//! ```text
//! cargo run --release --example verify_reproduction [seed] [scale]
//! ```

use archer2_repro::core::verify;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(2022);
    let scale: u32 = args.next().map(|s| s.parse().expect("scale")).unwrap_or(10);

    let report = verify::run(seed, scale);
    println!("{}", report.render());

    if !report.all_pass() {
        eprintln!("{} checks FAILED", report.failures().len());
        std::process::exit(1);
    }
}
