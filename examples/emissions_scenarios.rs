//! §2 of the paper as a runnable analysis: when should a facility trade
//! application performance for energy efficiency?
//!
//! Sweeps grid carbon intensity through the paper's three regimes, prints
//! the scope-2/scope-3 balance and the emissions-optimal operating point at
//! each level, then evaluates whole-service-life scenarios under flat and
//! decarbonising grid trajectories.
//!
//! ```text
//! cargo run --release --example emissions_scenarios
//! ```

use archer2_repro::core::experiment;
use archer2_repro::emissions::scenario::archer2_scenario;
use archer2_repro::emissions::OperatingChoice;
use archer2_repro::grid::IntensityScenario;

fn main() {
    let seed = 2022;

    println!("=== Section 2: emissions regimes ===");
    let analysis = experiment::emissions_regimes(seed);
    println!("{}", experiment::render_regimes(&analysis));
    if let Some(ci) = analysis.crossover_to("2.0 GHz") {
        println!("-> the 2.0 GHz cap becomes emissions-optimal above ~{ci:.0} gCO2/kWh");
    }
    println!();

    // --- Lifetime scenarios ----------------------------------------------
    println!("=== Service-lifetime scenarios (6-year life, 92% utilisation) ===");
    let choices = [
        OperatingChoice {
            label: "2.25 GHz+turbo".into(),
            node_power_kw: 0.49,
            runtime_ratio: 1.0,
        },
        OperatingChoice {
            label: "2.0 GHz".into(),
            node_power_kw: 0.39,
            runtime_ratio: 1.11,
        },
    ];
    let trajectories = [
        ("zero-carbon grid (0 g/kWh)", IntensityScenario::Flat(0.0)),
        ("balanced band (65 g/kWh)", IntensityScenario::Flat(65.0)),
        ("UK grid 2022 (~200 g/kWh)", IntensityScenario::UkGrid2022),
        (
            "decarbonising 200 -> 20 g/kWh over the life",
            IntensityScenario::Decarbonising {
                start_g: 200.0,
                end_g: 20.0,
                start_year: 2021,
                end_year: 2027,
            },
        ),
    ];

    for (label, traj) in trajectories {
        println!("--- {label} ---");
        let scenario = archer2_scenario(traj);
        for out in scenario.compare(&choices) {
            println!(
                "  {:<16} scope2 {:>7.0} t, scope3 {:>6.0} t, total {:>7.0} tCO2e, \
                 {:>6.1} g/work-unit, {:>5.0} GWh",
                out.label,
                out.scope2_t,
                out.scope3_t,
                out.total_t(),
                out.g_per_work_unit,
                out.energy_gwh,
            );
        }
        let outs = scenario.compare(&choices);
        let best = if outs[0].g_per_work_unit <= outs[1].g_per_work_unit {
            &outs[0]
        } else {
            &outs[1]
        };
        println!("  => emissions-optimal: {}", best.label);
        println!();
    }

    println!("The paper's rule (Section 2): below ~30 g/kWh embodied emissions dominate —");
    println!("optimise application performance; above ~100 g/kWh operational emissions");
    println!("dominate — optimise energy efficiency; in between, balance the two.");
}
