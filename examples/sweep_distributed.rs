//! Distributed sweep orchestration, end to end: shard a scenario grid
//! across worker *processes* and prove the merge bit-identical to the
//! single-process answer — through clean runs, a worker killed mid-shard,
//! and a straggler whose shard gets stolen.
//!
//! Four phases:
//!
//! 1. **Reference.** The whole grid runs in-process through
//!    [`run_in_process`] — the oracle digests everything else must hit.
//! 2. **Distributed.** The same grid, partitioned into 8 shards and run by
//!    4 worker processes (self-exec of this binary), merged, and checked:
//!    store digest and summary digest must equal the reference bit for bit.
//! 3. **Kill + resume.** A fresh sweep with a fault injected into one
//!    worker (abort after 1 scenario, torn snapshot left behind) and a
//!    zero retry budget — the sweep fails typed
//!    ([`SweepError::ShardExhausted`]). Then [`resume_distributed`] picks
//!    the manifest back up: completed shards validate and are skipped, the
//!    dead shard re-runs, and the merge is again bit-identical.
//! 4. **Steal.** A fresh sweep where one worker stalls; the coordinator's
//!    straggler deadline fires, the shard is duplicated onto a free slot,
//!    the duplicate wins, and the digests *still* match.
//!
//! Results land in `BENCH_sweep.json` (`digests_match` is the headline —
//! `scripts/verify.sh` gates on it).
//!
//! ```text
//! cargo run --release --example sweep_distributed [-- --smoke]
//! ```

use archer2_repro::core::campaign::CampaignConfig;
use archer2_repro::core::scenarios::ScenarioSpec;
use archer2_repro::core::sweep::{
    derive_seed, resume_distributed, run_distributed, run_in_process, SweepConfig, SweepError,
    WorkerCommand, WorkerFault,
};
use archer2_repro::prelude::*;
use archer2_repro::workload::{GeneratorConfig, OperatingPoint};
use serde::{Serialize, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Shards the grid is partitioned into.
const SHARDS: usize = 8;
/// Concurrent worker processes.
const WORKERS: usize = 4;

/// Write a benchmark record, then parse it back and check the keys the
/// verify script greps for — a malformed record should fail here, not in CI.
fn write_bench(path: &str, record: Value, required: &[&str]) {
    let json = serde_json::to_string_pretty(&record).expect("bench record serialises");
    std::fs::write(path, &json).expect("write benchmark json");
    let parsed = serde_json::parse_value(&json).expect("benchmark json parses back");
    let map = parsed.as_map().expect("benchmark json is an object");
    for key in required {
        assert!(
            serde::value::map_get(map, key).is_some(),
            "benchmark json missing key {key}"
        );
    }
    println!("benchmark record:          {path}");
}

/// The sweep grid: one campaign per seed, modest scale so the whole example
/// (four sweeps of the same grid) stays CI-sized.
fn grid(n: usize, hours: u64) -> Vec<ScenarioSpec> {
    let start = SimTime::from_ymd(2022, 3, 1);
    (0..n)
        .map(|i| {
            let config = CampaignConfig {
                seed: derive_seed(2022, i as u64),
                backlog_target: 30,
                generator: GeneratorConfig { max_nodes: 32, ..GeneratorConfig::default() },
                per_cabinet_telemetry: true,
                ..CampaignConfig::default()
            };
            ScenarioSpec::new(
                format!("grid{i:02}"),
                config,
                40,
                start,
                start + SimDuration::from_hours(hours),
                OperatingPoint::AFTER_BIOS,
            )
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-distributed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_config(worker: &WorkerCommand) -> SweepConfig {
    SweepConfig {
        shards: SHARDS,
        max_workers: WORKERS,
        retry_budget: 2,
        steal_after: None,
        worker: worker.clone(),
        fault: None,
        seed_derivation: "splitmix64(2022, index)".to_string(),
    }
}

fn main() {
    // Worker mode first: the coordinator re-execs this binary with the
    // ARCHER2_SWEEP_* environment set.
    if let Some(code) = archer2_repro::core::sweep::worker_from_env() {
        std::process::exit(code);
    }

    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scenarios, hours) = if smoke { (8, 6) } else { (16, 48) };
    let specs = grid(scenarios, hours);
    let worker = WorkerCommand::self_exec().expect("current_exe resolves");
    println!("== distributed sweep: {scenarios} scenarios, {SHARDS} shards, {WORKERS} workers ==\n");

    // Phase 1: the in-process oracle.
    let t = Instant::now();
    let reference = run_in_process(&specs);
    let wall_in_process = t.elapsed();
    println!("in-process reference:      {:>7.2?}  store {}", wall_in_process, reference.store_digest);

    // Phase 2: clean distributed run.
    let out_clean = scratch("clean");
    let t = Instant::now();
    let clean = run_distributed(specs.clone(), &base_config(&worker), &out_clean)
        .expect("clean distributed sweep");
    let wall_distributed = t.elapsed();
    assert_eq!(clean.merged.store_digest, reference.store_digest, "distributed store digest");
    assert_eq!(clean.merged.summary_digest, reference.summary_digest, "distributed summary digest");
    println!(
        "distributed (clean):       {:>7.2?}  store {}  attempts {}",
        wall_distributed, clean.merged.store_digest, clean.report.attempts
    );

    // Phase 3: kill a worker mid-shard, then resume from the manifest.
    // The doomed worker stalls before dying so its healthy siblings finish
    // first — that leaves real completed shards on disk for the resume to
    // validate and skip (and a torn snapshot where the abort hit).
    let out_kill = scratch("kill");
    let mut killed_config = base_config(&worker);
    killed_config.retry_budget = 0;
    killed_config.fault =
        Some(WorkerFault { shard: 1, abort_after: Some(1), stall_ms: Some(1_500) });
    let err = run_distributed(specs.clone(), &killed_config, &out_kill)
        .expect_err("a killed worker with no retry budget must fail the sweep");
    assert!(matches!(err, SweepError::ShardExhausted { shard: 1, .. }), "{err}");
    println!("kill mid-shard:            sweep failed typed: {err}");

    let t = Instant::now();
    let resumed = resume_distributed(&out_kill.join("manifest.json"), &base_config(&worker), &out_kill)
        .expect("resume after worker death");
    let wall_resume = t.elapsed();
    assert_eq!(resumed.merged.store_digest, reference.store_digest, "resumed store digest");
    assert_eq!(resumed.merged.summary_digest, reference.summary_digest, "resumed summary digest");
    assert!(resumed.report.resumed_shards > 0, "resume must skip completed shards");
    let resume_overhead_pct =
        100.0 * wall_resume.as_secs_f64() / wall_distributed.as_secs_f64().max(1e-9);
    println!(
        "resume from manifest:      {:>7.2?}  store {}  resumed shards {}  ({resume_overhead_pct:.0}% of clean run)",
        wall_resume, resumed.merged.store_digest, resumed.report.resumed_shards
    );

    // Phase 4: straggler stolen onto a free slot.
    let out_steal = scratch("steal");
    let mut steal_config = base_config(&worker);
    steal_config.steal_after = Some(Duration::from_millis(250));
    steal_config.fault = Some(WorkerFault { shard: 0, abort_after: None, stall_ms: Some(20_000) });
    let stolen = run_distributed(specs.clone(), &steal_config, &out_steal)
        .expect("sweep with a stalled worker");
    assert_eq!(stolen.merged.store_digest, reference.store_digest, "stolen store digest");
    assert_eq!(stolen.merged.summary_digest, reference.summary_digest, "stolen summary digest");
    assert!(stolen.report.stolen_shards >= 1, "the stalled shard must be stolen");
    println!(
        "work stealing:             {:>7.2?}  store {}  stolen shards {}",
        stolen.report.wall_ms as f64 / 1000.0,
        stolen.merged.store_digest,
        stolen.report.stolen_shards
    );

    let digests_match = clean.merged.store_digest == reference.store_digest
        && clean.merged.summary_digest == reference.summary_digest
        && resumed.merged.store_digest == reference.store_digest
        && stolen.merged.store_digest == reference.store_digest;
    let per_s_in_process = scenarios as f64 / wall_in_process.as_secs_f64().max(1e-9);
    let per_s_distributed = scenarios as f64 / wall_distributed.as_secs_f64().max(1e-9);

    let record = Value::Map(vec![
        ("bench".to_string(), Value::Str("sweep_distributed".to_string())),
        ("mode".to_string(), Value::Str(if smoke { "smoke" } else { "full" }.to_string())),
        ("scenarios".to_string(), (scenarios as u64).to_value()),
        ("shards".to_string(), (SHARDS as u64).to_value()),
        ("workers".to_string(), (WORKERS as u64).to_value()),
        ("wall_ms_in_process".to_string(), (wall_in_process.as_millis() as u64).to_value()),
        ("wall_ms_distributed".to_string(), (wall_distributed.as_millis() as u64).to_value()),
        ("wall_ms_resume".to_string(), (wall_resume.as_millis() as u64).to_value()),
        ("scenarios_per_s_in_process".to_string(), per_s_in_process.to_value()),
        ("scenarios_per_s_distributed".to_string(), per_s_distributed.to_value()),
        ("resume_overhead_pct".to_string(), resume_overhead_pct.to_value()),
        ("resumed_shards".to_string(), u64::from(resumed.report.resumed_shards).to_value()),
        ("stolen_shards".to_string(), u64::from(stolen.report.stolen_shards).to_value()),
        ("digests_match".to_string(), Value::Bool(digests_match)),
        ("sweep_digest".to_string(), Value::Str(reference.store_digest.clone())),
        ("summary_digest".to_string(), Value::Str(reference.summary_digest.clone())),
        ("grid_digest".to_string(), Value::Str(clean.merged.grid_digest.clone())),
    ]);
    println!();
    write_bench(
        "BENCH_sweep.json",
        record,
        &[
            "scenarios",
            "shards",
            "workers",
            "scenarios_per_s_distributed",
            "resume_overhead_pct",
            "stolen_shards",
            "digests_match",
            "sweep_digest",
        ],
    );

    for dir in [out_clean, out_kill, out_steal] {
        let _ = std::fs::remove_dir_all(dir);
    }
    assert!(digests_match, "every sweep variant must reproduce the reference digests");
    println!("\nall sweeps bit-identical to the in-process reference ({})", reference.store_digest);
}
