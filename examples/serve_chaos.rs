//! `hpc-serve` under a fault storm: a campaign ingests telemetry while
//! resilient client sessions query it through a deterministic chaos proxy
//! injecting latency, stalls, partial frames and disconnects.
//!
//! Four claims, measured:
//!
//! 1. **No request hangs.** Every chaos-path request resolves — success
//!    or typed error — within its deadline (`hung_requests` must be 0).
//! 2. **The storm is survivable.** Under the default plan the retry layer
//!    absorbs every fault (`success_rate` must be exactly 1.0).
//! 3. **Chaos cannot corrupt.** After the campaign freezes, the same
//!    query mix is run clean and through a fresh storm; surviving replies
//!    must be byte-identical (`replies_bit_identical`).
//! 4. **Slow clients die, drains are graceful.** Deliberate slow-loris
//!    sessions are evicted (`evictions`), and the campaign-owned drain
//!    lets the idle tail leave with a typed frame (`drained_sessions`,
//!    `force_closed`).
//!
//! Fault schedules and retry jitter are seeded (`DetRng`); thread
//! scheduling still varies which connection draws which fault, so the
//! aggregate counters are reported, not asserted to exact values.
//!
//! Results land in `BENCH_serve_chaos.json`.
//!
//! ```text
//! cargo run --release --example serve_chaos [-- --smoke]
//! ```

use archer2_repro::core::campaign::{Campaign, CampaignConfig};
use archer2_repro::core::experiment;
use archer2_repro::prelude::*;
use archer2_repro::workload::OperatingPoint;
use archer2_repro::serve::{
    ChaosPlan, ChaosProxy, Client, ClientConfig, Request, ResilientClient, RetryPolicy,
    RetryStats, Server, ServerConfig, TimeoutConfig, WireOp, PROTOCOL_VERSION,
};
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Client sessions hammering through the chaos proxy.
const CHAOS_SESSIONS: usize = 4;
/// Client sessions on the clean path (the latency control arm).
const CLEAN_SESSIONS: usize = 2;
/// Deliberate slow-loris sessions the server must evict.
const LORIS_SESSIONS: usize = 3;

/// Write a benchmark record, then parse it back and check the keys the
/// verify script greps for — a malformed record should fail here, not in CI.
fn write_bench(path: &str, record: Value, required: &[&str]) {
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let json = serde_json::to_string_pretty(&Raw(record)).expect("bench record serialises");
    std::fs::write(path, &json).expect("write benchmark json");
    let parsed = serde_json::parse_value(&json).expect("benchmark json parses back");
    let map = parsed.as_map().expect("benchmark json is an object");
    for key in required {
        assert!(
            serde::value::map_get(map, key).is_some(),
            "benchmark json missing key {key}"
        );
    }
    println!("benchmark record:         {path}");
}

/// Exact nearest-rank percentile over sorted microsecond latencies.
fn pct(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// The deterministic query mix: request `n` of a session, bounded to
/// `window`. Four data-query shapes, no introspection (its counters vary,
/// which would break the bit-identity comparison).
fn mix_request(n: usize, window: (i64, i64)) -> Request {
    let (lo, hi) = window;
    let from = lo + ((n as i64 * 37) % 96) * 900;
    let to = (from + 6 * 3_600).min(hi);
    match n % 4 {
        0 => Request::Aggregate { series: "facility".into(), from, to, op: WireOp::Mean },
        1 => Request::Windows { series: "facility".into(), from, to, step: 3_600, op: WireOp::Max },
        2 => Request::Group {
            series: vec!["cabinet.0".into(), "cabinet.1".into()],
            from,
            to,
        },
        _ => Request::Gap { series: "cabinet.1".into(), from, to },
    }
}

/// Socket deadlines for the chaos arm: patient enough to sit out any
/// injected stall, impatient enough that truncation silence fails fast.
fn chaos_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(Duration::from_secs(1)),
        write_timeout: Some(Duration::from_secs(2)),
    }
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        request_deadline: Duration::from_secs(20),
        seed,
    }
}

/// What one load session brings home.
struct SessionReport {
    latencies_us: Vec<f64>,
    stats: RetryStats,
    hung: u64,
    errors: u64,
}

/// One resilient session: `n_queries` of the mix, timing every call and
/// flagging any that outlived its deadline (plus scheduling slack) as a
/// hang — the thing this whole PR exists to make impossible.
fn run_session(
    addr: SocketAddr,
    tenant: &str,
    seed: u64,
    window: (i64, i64),
    n_queries: usize,
) -> SessionReport {
    let policy = retry_policy(seed);
    let hang_bar = policy.request_deadline + Duration::from_secs(2);
    let mut client = ResilientClient::with_policy(addr, tenant, chaos_client_config(), policy);
    let mut latencies_us = Vec::with_capacity(n_queries);
    let mut hung = 0u64;
    let mut errors = 0u64;
    for n in 0..n_queries {
        // Cycle the connection periodically: the chaos plan draws one
        // fault per connection, so a session that never reconnects would
        // sample the storm a handful of times instead of continuously.
        if n > 0 && n % 8 == 0 {
            client.disconnect();
        }
        let t = Instant::now();
        let result = client.request(&mix_request(n, window));
        let elapsed = t.elapsed();
        latencies_us.push(elapsed.as_secs_f64() * 1e6);
        if elapsed > hang_bar {
            hung += 1;
        }
        if let Err(e) = result {
            eprintln!("[{tenant}] request {n}: {e}");
            errors += 1;
        }
    }
    SessionReport { latencies_us, stats: client.stats(), hung, errors }
}

/// A slow-loris attacker: handshake, then dribble one byte of a valid
/// frame every 400 ms. The server's total-frame deadline must evict it.
fn slow_loris(addr: SocketAddr) {
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr).expect("loris connect");
    archer2_repro::serve::protocol::send_message(
        &mut stream,
        &Request::Hello { version: PROTOCOL_VERSION, tenant: "loris".into() },
    )
    .expect("loris handshake");
    let _ = archer2_repro::serve::protocol::read_frame(&mut stream).expect("loris ack");
    let payload = serde_json::to_string(&Request::Ping).unwrap().into_bytes();
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&payload);
    for byte in frame {
        if stream.write_all(&[byte]).is_err() {
            return; // evicted and closed — mission accomplished
        }
        std::thread::sleep(Duration::from_millis(400));
    }
    // Frame completed without eviction: the idle deadline is misconfigured
    // for this bench; surface it loudly.
    panic!("slow-loris dribbler was never evicted");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let days = if smoke { 3 } else { 8 };
    let n_queries = if smoke { 25 } else { 100 };
    let start = SimTime::from_ymd(2022, 6, 1);
    let end = start + SimDuration::from_days(days);
    let step = SimDuration::from_hours(6);
    println!("=== serve-chaos: {days}-day campaign under a seeded fault storm ===");

    let cfg = CampaignConfig { per_cabinet_telemetry: true, ..CampaignConfig::default() };
    let mut serving = Campaign::new(
        experiment::scaled_facility(2022, 10),
        cfg,
        start,
        OperatingPoint::AFTER_BIOS,
    );
    let config = ServerConfig {
        timeouts: TimeoutConfig {
            handshake_deadline: Duration::from_millis(1_500),
            idle_deadline: Duration::from_millis(1_500),
            write_timeout: Duration::from_secs(2),
            poll_tick: Duration::from_millis(10),
            drain_deadline: Duration::from_secs(2),
        },
        ..ServerConfig::default()
    };
    let server = Server::start(serving.serve_store(), config).expect("bind server");
    let addr = server.local_addr();
    let proxy = ChaosProxy::start(addr, ChaosPlan::storm(0xA2C4_E057)).expect("bind proxy");
    let proxy_addr = proxy.local_addr();
    println!("server {addr}  ⇢ chaos proxy {proxy_addr}");

    // --- Phase 1: load through the storm while the campaign ingests ------
    let window = (start.as_unix() as i64, (start + SimDuration::from_days(1)).as_unix() as i64);
    let mut threads = Vec::new();
    for i in 0..CHAOS_SESSIONS {
        let tenant = if i % 2 == 0 { "ops" } else { "science" };
        threads.push((
            true,
            std::thread::spawn(move || {
                run_session(proxy_addr, tenant, 0xC4A05 ^ i as u64, window, n_queries)
            }),
        ));
    }
    for i in 0..CLEAN_SESSIONS {
        threads.push((
            false,
            std::thread::spawn(move || {
                run_session(addr, "control", 0xC1EA4 ^ i as u64, window, n_queries)
            }),
        ));
    }
    let lorises: Vec<_> =
        (0..LORIS_SESSIONS).map(|_| std::thread::spawn(move || slow_loris(addr))).collect();

    serving.run_serve(end, step, |_| {});
    let mut chaos_lat = Vec::new();
    let mut clean_lat = Vec::new();
    let mut stats = RetryStats::default();
    let mut hung = 0u64;
    let mut errors = 0u64;
    for (through_proxy, t) in threads {
        let report = t.join().expect("session thread");
        hung += report.hung;
        if through_proxy {
            chaos_lat.extend(report.latencies_us);
            errors += report.errors;
            let s = report.stats;
            stats.requests += s.requests;
            stats.succeeded += s.succeeded;
            stats.retries += s.retries;
            stats.reconnects += s.reconnects;
            stats.backoff_ms += s.backoff_ms;
            stats.honoured_retry_after += s.honoured_retry_after;
            stats.deadline_exceeded += s.deadline_exceeded;
            stats.exhausted += s.exhausted;
            stats.refused += s.refused;
        } else {
            clean_lat.extend(report.latencies_us);
            assert_eq!(report.errors, 0, "the clean control arm must never error");
        }
    }
    for l in lorises {
        l.join().expect("loris thread");
    }
    chaos_lat.sort_by(f64::total_cmp);
    clean_lat.sort_by(f64::total_cmp);
    let success_rate = stats.succeeded as f64 / stats.requests as f64;
    let fault_stats = proxy.stats();
    let evictions = server.introspect().sessions_evicted;
    println!(
        "chaos arm:                {} requests, success rate {:.4}, {} retries, {} reconnects",
        stats.requests, success_rate, stats.retries, stats.reconnects,
    );
    println!(
        "faults injected:          {} ({} delay / {} stall / {} truncate / {} disconnect)",
        fault_stats.faults_injected(),
        fault_stats.delayed,
        fault_stats.stalled,
        fault_stats.truncated,
        fault_stats.disconnected,
    );
    println!("slow-loris evictions:     {evictions}");
    assert!(evictions >= LORIS_SESSIONS as u64, "every dribbler must be evicted");
    assert_eq!(hung, 0, "no request may outlive its deadline");
    assert_eq!(errors, 0, "the default storm must be fully absorbed by retries");

    // --- Phase 2: bit-identity on the now-frozen store -------------------
    // The campaign is done, so the store is immutable: the same mix must
    // produce byte-identical replies clean and through a fresh storm.
    let id_window = (start.as_unix() as i64, (start + SimDuration::from_days(2)).as_unix() as i64);
    let id_queries = if smoke { 16 } else { 48 };
    let mut clean_client = Client::connect(addr, "identity").expect("clean connect");
    let clean_replies: Vec<String> = (0..id_queries)
        .map(|n| {
            let reply = clean_client.request(&mix_request(n, id_window)).expect("clean reply");
            serde_json::to_string(&reply).expect("reply serialises")
        })
        .collect();
    let id_proxy = ChaosProxy::start(addr, ChaosPlan::storm(0xB17_1D37)).expect("bind proxy");
    let mut id_client = ResilientClient::with_policy(
        id_proxy.local_addr(),
        "identity",
        chaos_client_config(),
        retry_policy(0xB17_5EED),
    );
    let mut replies_bit_identical = true;
    for (n, want) in clean_replies.iter().enumerate() {
        let reply = id_client
            .request(&mix_request(n, id_window))
            .expect("identity request must survive the storm");
        let got = serde_json::to_string(&reply).expect("reply serialises");
        if &got != want {
            eprintln!("reply {n} diverged under chaos:\n  clean: {want}\n  chaos: {got}");
            replies_bit_identical = false;
        }
    }
    println!(
        "bit-identity:             {id_queries} replies via storm, identical: {replies_bit_identical} \
         ({} retries)",
        id_client.stats().retries,
    );
    assert!(replies_bit_identical, "chaos must never corrupt a reply");
    drop(id_proxy);
    drop(proxy);

    // --- Phase 3: campaign-owned graceful drain --------------------------
    // One idle session sits between frames; the campaign runs one more
    // step and then winds the serving tier down. The idle session must be
    // told with a typed Draining frame, not force-closed.
    let mut idler = std::net::TcpStream::connect(addr).expect("idler connect");
    archer2_repro::serve::protocol::send_message(
        &mut idler,
        &Request::Hello { version: PROTOCOL_VERSION, tenant: "idler".into() },
    )
    .expect("idler handshake");
    let _ = archer2_repro::serve::protocol::read_frame(&mut idler).expect("idler ack");
    let drain = serving.run_serve_drained(
        end + step,
        step,
        server,
        Duration::from_secs(2),
        |_| {},
    );
    idler.set_read_timeout(Some(Duration::from_secs(2))).expect("idler timeout");
    let notice = archer2_repro::serve::protocol::read_frame(&mut idler).expect("drain notice");
    let notice = String::from_utf8(notice).expect("drain notice utf8");
    assert!(notice.contains("Draining"), "idle session must get a typed Draining frame");
    println!(
        "drain:                    {} sessions at drain, {} drained, {} force-closed",
        drain.sessions_at_drain, drain.drained, drain.force_closed,
    );
    assert!(drain.sessions_at_drain >= 1, "the idler must be counted at drain");
    assert_eq!(drain.force_closed, 0, "nothing should need force-closing");

    write_bench(
        "BENCH_serve_chaos.json",
        Value::Map(vec![
            ("bench".into(), "serve_chaos".to_string().to_value()),
            ("smoke".into(), smoke.to_value()),
            ("days".into(), (days as u64).to_value()),
            ("chaos_sessions".into(), (CHAOS_SESSIONS as u64).to_value()),
            ("clean_sessions".into(), (CLEAN_SESSIONS as u64).to_value()),
            ("requests".into(), stats.requests.to_value()),
            ("success_rate".into(), success_rate.to_value()),
            ("retries".into(), stats.retries.to_value()),
            ("reconnects".into(), stats.reconnects.to_value()),
            ("backoff_ms".into(), stats.backoff_ms.to_value()),
            ("honoured_retry_after".into(), stats.honoured_retry_after.to_value()),
            ("faults_injected".into(), fault_stats.faults_injected().to_value()),
            ("faults_delayed".into(), fault_stats.delayed.to_value()),
            ("faults_stalled".into(), fault_stats.stalled.to_value()),
            ("faults_truncated".into(), fault_stats.truncated.to_value()),
            ("faults_disconnected".into(), fault_stats.disconnected.to_value()),
            ("evictions".into(), evictions.to_value()),
            ("hung_requests".into(), hung.to_value()),
            ("p50_us_clean".into(), pct(&clean_lat, 50.0).to_value()),
            ("p99_us_clean".into(), pct(&clean_lat, 99.0).to_value()),
            ("p50_us_chaos".into(), pct(&chaos_lat, 50.0).to_value()),
            ("p99_us_chaos".into(), pct(&chaos_lat, 99.0).to_value()),
            ("replies_bit_identical".into(), replies_bit_identical.to_value()),
            ("drained_sessions".into(), drain.drained.to_value()),
            ("force_closed".into(), drain.force_closed.to_value()),
        ]),
        &[
            "success_rate",
            "retries",
            "evictions",
            "hung_requests",
            "p99_us_clean",
            "p99_us_chaos",
            "replies_bit_identical",
            "drained_sessions",
            "force_closed",
        ],
    );
    println!(
        "latency:                  clean p50 {:.0} µs p99 {:.0} µs   chaos p50 {:.0} µs p99 {:.0} µs",
        pct(&clean_lat, 50.0),
        pct(&clean_lat, 99.0),
        pct(&chaos_lat, 50.0),
        pct(&chaos_lat, 99.0),
    );
}
