//! A week in the machine room: failure injection, per-cabinet telemetry,
//! partition admission and job-trace accounting — the operational substrate
//! around the paper's measurements.
//!
//! ```text
//! cargo run --release --example facility_operations
//! ```

use archer2_repro::core::campaign::{Campaign, CampaignConfig, FailureConfig};
use archer2_repro::core::experiment::scaled_facility;
use archer2_repro::prelude::*;
use archer2_repro::sched::QosPolicy;
use archer2_repro::workload::OperatingPoint;

fn main() {
    let seed = 2022;
    let facility = scaled_facility(seed, 10);
    let scale_up = 5860.0 / facility.nodes() as f64;
    let start = SimTime::from_ymd(2022, 9, 1);

    let config = CampaignConfig {
        record_trace: true,
        per_cabinet_telemetry: true,
        failures: Some(FailureConfig {
            node_mtbf_hours: 4_380.0, // ~6 months per node
            repair: SimDuration::from_hours(24),
        }),
        ..CampaignConfig::default()
    };

    println!("simulating one week with failures, traces and cabinet meters...");
    let mut c = Campaign::new(facility, config, start, OperatingPoint::AFTER_BIOS);
    c.run_until(start + SimDuration::from_days(7));

    // --- Reliability ------------------------------------------------------
    let (failures, killed) = c.failure_counts();
    println!();
    println!("=== Reliability ===");
    println!("node failures this week:   {failures}");
    println!("jobs killed and requeued:  {killed}");
    println!("nodes in repair right now: {}", c.offline_nodes());
    println!("utilisation held at:       {:.1}%", c.utilisation() * 100.0);

    // --- Per-cabinet telemetry --------------------------------------------
    println!();
    println!("=== Per-cabinet mean power (full-facility kW) ===");
    for (i, s) in c.cabinet_series().iter().enumerate() {
        println!("cabinet {i}: {:>7.0} kW", s.mean() * scale_up);
    }
    let sum: f64 = c.cabinet_series().iter().map(|s| s.mean()).sum::<f64>() * scale_up;
    println!("sum {:.0} kW vs facility series {:.0} kW", sum, c.power_series().mean() * scale_up);

    // --- Job accounting -----------------------------------------------------
    let trace = c.trace();
    println!();
    println!("=== Job accounting (HPC-JEEP style) ===");
    println!("completed jobs:        {}", trace.len());
    println!("node-hours delivered:  {:.0}", trace.total_node_hours());
    println!("compute energy:        {:.1} MWh", trace.total_energy_kwh() / 1000.0);
    println!("fleet efficiency:      {:.3} kWh per node-hour", trace.mean_kwh_per_node_hour());
    println!();
    println!("top applications by node-hours:");
    for (app, nh) in trace.node_hours_by_app().into_iter().take(6) {
        println!("  {app:<32} {nh:>9.0} node-h");
    }

    // --- Partition admission -------------------------------------------------
    let qos = QosPolicy::archer2();
    println!();
    println!("=== Partition routing of this week's completed jobs ===");
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for e in trace.entries() {
        // Re-validate each record against the ARCHER2 partition table.
        let job = archer2_repro::workload::Job::new(
            e.job,
            archer2_repro::workload::AppModel::generic(e.area),
            e.nodes,
            e.runtime(),
            e.runtime(),
            e.submitted,
        );
        let name = qos.route(&job).map(|p| p.name.clone()).unwrap_or_else(|| "unroutable".into());
        *counts.entry(name).or_default() += 1;
    }
    for (partition, n) in counts {
        println!("  {partition:<12} {n:>6} jobs");
    }

    // --- Archive the trace ----------------------------------------------------
    let json = trace.to_json();
    println!();
    println!("trace serialises to {} KiB of JSON (archival/replay format)", json.len() / 1024);
}
