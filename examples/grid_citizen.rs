//! The "good grid citizen" scenario (§3, §5): Winter 2022/23 UK grid
//! capacity concerns, curtailment requests on cold weekday evenings, and
//! what the facility's frequency lever frees up.
//!
//! Synthesises a December of grid headroom, extracts the operator's
//! curtailment requests, and shows how much grid capacity the 2.0 GHz
//! default releases during each window (the paper: the changes "freed up a
//! substantial amount [of] grid power capacity during a period of
//! significant uncertainty in energy supplies in the UK").
//!
//! ```text
//! cargo run --release --example grid_citizen
//! ```

use archer2_repro::core::experiment;
use archer2_repro::grid::GridCapacityModel;
use archer2_repro::prelude::*;

fn main() {
    let seed = 2022;

    // The two operating levels from the reproduced campaign.
    let fig3 = experiment::figure3(seed, 10);
    let at_turbo_kw = fig3.settled_means_kw[0];
    let at_2ghz_kw = fig3.settled_means_kw[1];
    let freed_kw = at_turbo_kw - at_2ghz_kw;

    println!("facility at 2.25 GHz+turbo: {at_turbo_kw:.0} kW");
    println!("facility at 2.0 GHz:        {at_2ghz_kw:.0} kW");
    println!("capacity freed:             {freed_kw:.0} kW (paper: ~480 kW)");
    println!();

    // December 2022 grid stress.
    let mut grid = GridCapacityModel::new(seed);
    let start = SimTime::from_ymd(2022, 12, 1);
    let end = SimTime::from_ymd(2023, 1, 1);
    let requests = grid.curtailment_requests(start, end, SimDuration::from_mins(30));

    println!("=== December 2022 curtailment requests (synthetic UK-winter grid) ===");
    println!(
        "{:<22} {:>10} {:>9} {:>14}",
        "window start", "duration", "severity", "energy shed"
    );
    let mut total_shed_mwh = 0.0;
    for r in &requests {
        let shed_mwh = freed_kw * r.duration.as_hours_f64() / 1000.0;
        total_shed_mwh += shed_mwh;
        println!(
            "{:<22} {:>10} {:>8.0}% {:>11.1} MWh",
            r.start.to_string(),
            r.duration.to_string(),
            r.severity * 100.0,
            shed_mwh
        );
    }
    println!();
    println!(
        "{} curtailment windows in December; running the facility at 2.0 GHz during",
        requests.len()
    );
    println!("them returns {total_shed_mwh:.1} MWh of capacity to the grid at its tightest hours.");
    println!();
    println!("Because the frequency default is a soft, per-job setting (§4.2), the service");
    println!("can apply it only when the grid is stressed — the lever the paper built.");
}
