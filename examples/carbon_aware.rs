//! Beyond the paper: carbon-aware operation and the economics of the
//! frequency lever.
//!
//! Three analyses extending §2/§5:
//! 1. **Load shifting** — how much scope-2 the facility saves by timing
//!    flexible work to low-carbon hours;
//! 2. **Cooling** — what the 21 % IT saving does to the cooling plant and
//!    facility PUE;
//! 3. **TCO** — the §1 claim that lifetime electricity now rivals capital
//!    cost, and what the 690 kW saving is worth.
//!
//! ```text
//! cargo run --release --example carbon_aware
//! ```

use archer2_repro::emissions::CostModel;
use archer2_repro::grid::{optimal_shift, IntensityScenario};
use archer2_repro::power::CoolingPlant;
use archer2_repro::prelude::*;

fn main() {
    // --- 1. Carbon-aware load shifting -----------------------------------
    println!("=== Carbon-aware load shifting (Nov 2022, UK-like grid) ===");
    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>10}",
        "flexible", "deferral", "baseline t", "shifted t", "saved"
    );
    for (flex, delay_h) in [(0.05, 6u64), (0.10, 12), (0.20, 24)] {
        let out = optimal_shift(
            IntensityScenario::UkGrid2022,
            SimTime::from_ymd(2022, 11, 1),
            24 * 30,
            3_000.0,
            flex,
            0.10,
            SimDuration::from_hours(delay_h),
        );
        println!(
            "{:<12} {:<10} {:>12.1} {:>12.1} {:>9.2}%",
            format!("{:.0}%", flex * 100.0),
            format!("{delay_h} h"),
            out.baseline_t,
            out.shifted_t,
            out.saved_fraction() * 100.0
        );
    }
    println!("(moving work to windy hours complements the paper's frequency lever)");
    println!();

    // --- 2. Cooling and PUE ------------------------------------------------
    println!("=== Cooling plant response to the 21% IT saving ===");
    let plant = CoolingPlant::default();
    for (label, it_mw) in [("baseline (3.22 MW IT)", 3.22e6), ("after changes (2.53 MW IT)", 2.53e6)] {
        let pue = plant.annual_mean_pue(it_mw, 2022);
        let winter = plant.cooling_power(it_mw, SimTime::from_ymd_hms(2022, 1, 10, 12, 0, 0));
        let summer = plant.cooling_power(it_mw, SimTime::from_ymd_hms(2022, 7, 20, 15, 0, 0));
        println!(
            "{label}: annual PUE {pue:.3}; cooling {:.0} kW (winter) / {:.0} kW (summer peak)",
            winter.total_w() / 1000.0,
            summer.total_w() / 1000.0
        );
    }
    println!("(cube-law pumps mean the cooling saving outpaces the IT saving)");
    println!();

    // --- 3. Total cost of ownership ----------------------------------------
    println!("=== TCO: the Section 1 claim, quantified ===");
    println!(
        "{:<28} {:>14} {:>18} {:>10}",
        "electricity price", "lifetime elec.", "electricity share", "crossover?"
    );
    for (label, price) in [
        ("pre-crisis (GBP 0.10/kWh)", 0.10),
        ("2021 (GBP 0.20/kWh)", 0.20),
        ("winter 2022 (GBP 0.30/kWh)", 0.30),
        ("crisis peak (GBP 0.45/kWh)", 0.45),
    ] {
        let m = CostModel::archer2(price);
        println!(
            "{:<28} {:>11.0} MGBP {:>17.0}% {:>10}",
            label,
            m.lifetime_electricity_mgbp(),
            m.electricity_share() * 100.0,
            if m.electricity_share() >= 0.5 { "yes" } else { "no" }
        );
    }
    let m = CostModel::archer2(0.30);
    println!();
    println!(
        "crossover price: GBP {:.2}/kWh (capital = lifetime electricity)",
        m.crossover_price_gbp_per_kwh()
    );
    println!(
        "the paper's 690 kW saving is worth GBP {:.1}M per year at winter-2022 prices",
        m.annual_cost_of_kw(690.0)
    );
}
