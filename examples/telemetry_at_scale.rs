//! Telemetry at per-node scale: a simulated month of power samples for the
//! full 5,860-node ARCHER2 fleet, ingested concurrently into `hpc-tsdb`
//! through its sharded pipeline, then queried back.
//!
//! Reports what the paper's measurement chapter cares about operationally:
//! how fast the store ingests, how many bytes a compressed sample costs
//! (the cabinet PDUs quantize to watts, which the XOR codec exploits), and
//! that rollup-planned queries agree with raw scans.
//!
//! ```text
//! cargo run --release --example telemetry_at_scale
//! ```

use archer2_repro::core::campaign::{Campaign, CampaignConfig};
use archer2_repro::core::experiment;
use archer2_repro::prelude::*;
use archer2_repro::sim::rng::{Rng, Xoshiro256StarStar};
use archer2_repro::tsdb::query::{aggregate, aligned_windows, AggOp};
use archer2_repro::tsdb::{SeriesMeta, StoreConfig, TsdbStore};
use archer2_repro::workload::OperatingPoint;
use std::time::Instant;

/// Full ARCHER2 fleet (Table 1).
const NODES: u32 = 5_860;
/// Telemetry cadence: the paper's cabinet PDU readings come at minutes-level
/// cadence; 15 minutes matches the campaign telemetry.
const INTERVAL_S: i64 = 900;
const DAYS: i64 = 30;
const SAMPLES_PER_NODE: i64 = DAYS * 86_400 / INTERVAL_S;

/// One node-month of power samples, quantized to 1 W like the PDU readings.
///
/// The shape mirrors production: long busy plateaus at a job-specific draw
/// (jobs run for hours at a near-constant power), idle valleys between
/// jobs, and ±1 W measurement jitter.
fn node_month(node: u32) -> Vec<(i64, f64)> {
    let mut rng = Xoshiro256StarStar::seeded(0x7e1e_3e7e ^ u64::from(node));
    let mut out = Vec::with_capacity(SAMPLES_PER_NODE as usize);
    let mut remaining = 0i64; // samples left in the current phase
    let mut level_w = 0i64;
    for i in 0..SAMPLES_PER_NODE {
        if remaining == 0 {
            // Draw the next phase: ~92 % of time busy (>90 % utilisation).
            if rng.chance(0.92) {
                // A job's node draw: 300–850 W, held for 2–24 h.
                level_w = 300 + rng.next_below(551) as i64;
                remaining = (2 + rng.next_below(23) as i64) * 3600 / INTERVAL_S;
            } else {
                level_w = 250; // idle draw
                remaining = 1 + rng.next_below(8) as i64;
            }
        }
        remaining -= 1;
        let jitter = rng.next_below(3) as i64 - 1; // ±1 W meter noise
        out.push((i * INTERVAL_S, (level_w + jitter) as f64));
    }
    out
}

fn main() {
    // --- Part 1: a month of per-node telemetry through the pipeline -----
    println!("=== hpc-tsdb: one month, {NODES} nodes, {INTERVAL_S}s cadence ===");
    let store = TsdbStore::new(StoreConfig { shards: 8, channel_capacity: 64 });
    let ids: Vec<_> = (0..NODES)
        .map(|n| {
            store.register(SeriesMeta {
                name: format!("node.{n}"),
                unit: "W".into(),
                interval_hint: INTERVAL_S,
            })
        })
        .collect();

    let t0 = Instant::now();
    let pipeline = store.pipeline();
    std::thread::scope(|s| {
        // Four producers, disjoint node ranges, feeding all eight shards.
        for producer_ids in ids.chunks(ids.len().div_ceil(4)) {
            let pipeline = &pipeline;
            s.spawn(move || {
                for &id in producer_ids {
                    // Ids are dense and allocated in node order on this
                    // fresh store, so the id doubles as the node index.
                    pipeline.send(id, node_month(id.0 as u32));
                }
            });
        }
    });
    pipeline.close();
    let elapsed = t0.elapsed();

    let samples = store.total_samples();
    let bytes = store.total_bytes();
    let bytes_per_sample = bytes as f64 / samples as f64;
    let raw_bytes = samples * 16; // (i64 ts, f64 value) uncompressed
    println!("ingested:          {:.1} M samples in {:.2} s", samples as f64 / 1e6, elapsed.as_secs_f64());
    println!("ingest rate:       {:.1} M samples/s", samples as f64 / 1e6 / elapsed.as_secs_f64());
    println!("compressed size:   {:.1} MiB ({bytes_per_sample:.2} bytes/sample)", bytes as f64 / (1 << 20) as f64);
    println!("compression ratio: {:.1}x vs 16-byte raw samples", raw_bytes as f64 / bytes as f64);
    assert!(bytes_per_sample < 3.0, "expected <3 bytes/sample, got {bytes_per_sample:.2}");

    // Query back: fleet mean power and one node's daily profile.
    let fleet_mean_w = store.global_aggregate().mean();
    println!("fleet mean draw:   {:.0} W/node ({:.0} kW over compute nodes)", fleet_mean_w, fleet_mean_w * f64::from(NODES) / 1000.0);
    let t_q = Instant::now();
    let (p95, plan) = store
        .with_series(ids[17], |s| aggregate(s, 0, DAYS * 86_400, AggOp::P95))
        .unwrap();
    println!("node.17 month p95: {p95:.0} W (plan: {plan:?}, {:.1} ms)", t_q.elapsed().as_secs_f64() * 1e3);
    let t_q = Instant::now();
    let days = store
        .with_series(ids[17], |s| aligned_windows(s, 0, DAYS * 86_400, 86_400, AggOp::Mean))
        .unwrap();
    println!(
        "node.17 daily means: {:.0}..{:.0} W over {} days (rollup-planned, {:.1} ms)",
        days.iter().map(|w| w.value).fold(f64::INFINITY, f64::min),
        days.iter().map(|w| w.value).fold(f64::NEG_INFINITY, f64::max),
        days.len(),
        t_q.elapsed().as_secs_f64() * 1e3,
    );

    // --- Part 2: the campaign records straight into the same store ------
    println!();
    println!("=== campaign with per-node telemetry (1/10-scale facility) ===");
    let facility = experiment::scaled_facility(2022, 10);
    let start = SimTime::from_ymd(2022, 6, 1);
    let cfg = CampaignConfig {
        per_cabinet_telemetry: true,
        per_node_telemetry: true,
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(facility, cfg, start, OperatingPoint::AFTER_BIOS);
    campaign.run_until(start + SimDuration::from_days(7));

    let cstore = campaign.telemetry_store();
    println!(
        "series recorded:   {} (facility + {} cabinets + {} nodes)",
        cstore.series_count(),
        campaign.cabinet_series_ids().len(),
        campaign.node_series_ids().len(),
    );
    println!(
        "store footprint:   {:.1} KiB for {} samples ({:.2} bytes/sample)",
        cstore.total_bytes() as f64 / 1024.0,
        cstore.total_samples(),
        cstore.total_bytes() as f64 / cstore.total_samples() as f64,
    );
    let week_mean = cstore
        .with_series(campaign.facility_series_id(), |s| {
            aggregate(s, start.as_unix() as i64, (start + SimDuration::from_days(7)).as_unix() as i64, AggOp::Mean).0
        })
        .unwrap();
    println!(
        "facility mean:     {:.0} kW (TimeSeries view agrees: {:.0} kW)",
        week_mean,
        campaign.power_series().mean(),
    );
}
