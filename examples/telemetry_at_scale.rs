//! Telemetry at per-node scale: a simulated month of power samples for the
//! full 5,860-node ARCHER2 fleet, ingested concurrently into `hpc-tsdb`
//! through its sharded pipeline, then queried back — sequentially and
//! through the parallel fan-out engine, cold-cache and warm.
//!
//! Reports what the paper's measurement chapter cares about operationally:
//! how fast the store ingests, how many bytes a compressed sample costs
//! (the cabinet PDUs quantize to watts, which the XOR codec exploits), that
//! rollup-planned queries agree with raw scans, and what the fan-out layer
//! buys on multi-series readbacks. Query-phase numbers land in
//! `BENCH_tsdb_query.json`.
//!
//! ```text
//! cargo run --release --example telemetry_at_scale [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the fleet and span so CI can exercise the whole path
//! (including the benchmark JSON) in a couple of seconds.

use archer2_repro::core::campaign::{Campaign, CampaignConfig};
use archer2_repro::core::experiment;
use archer2_repro::prelude::*;
use archer2_repro::sim::rng::{Rng, Xoshiro256StarStar};
use archer2_repro::tsdb::query::{aggregate, aligned_windows, AggOp};
use archer2_repro::tsdb::{
    fanout_aggregate, fanout_group, fanout_workers, recover, store_aggregate, SeriesId,
    SeriesMeta, StoreConfig, TsdbStore, WalConfig, WalWriter,
};
use archer2_repro::workload::OperatingPoint;
use serde::{Serialize, Value};
use std::time::Instant;

/// Write a benchmark record, then parse it back and check the keys the
/// verify script greps for — a malformed record should fail here, not in CI.
fn write_bench(path: &str, record: Value, required: &[&str]) {
    // The shim's serialiser is generic over `Serialize`, not `Value`.
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let json = serde_json::to_string_pretty(&Raw(record)).expect("bench record serialises");
    std::fs::write(path, &json).expect("write benchmark json");
    let parsed = serde_json::parse_value(&json).expect("benchmark json parses back");
    let map = parsed.as_map().expect("benchmark json is an object");
    for key in required {
        assert!(
            serde::value::map_get(map, key).is_some(),
            "benchmark json missing key {key}"
        );
    }
    println!("benchmark record:         {path}");
}

/// Full ARCHER2 fleet (Table 1).
const NODES: u32 = 5_860;
/// Telemetry cadence: the paper's cabinet PDU readings come at minutes-level
/// cadence; 15 minutes matches the campaign telemetry.
const INTERVAL_S: i64 = 900;
const DAYS: i64 = 30;

/// One node-month of power samples, quantized to 1 W like the PDU readings.
///
/// The shape mirrors production: long busy plateaus at a job-specific draw
/// (jobs run for hours at a near-constant power), idle valleys between
/// jobs, and ±1 W measurement jitter.
fn node_month(node: u32, samples_per_node: i64) -> Vec<(i64, f64)> {
    let mut rng = Xoshiro256StarStar::seeded(0x7e1e_3e7e ^ u64::from(node));
    let mut out = Vec::with_capacity(samples_per_node as usize);
    let mut remaining = 0i64; // samples left in the current phase
    let mut level_w = 0i64;
    for i in 0..samples_per_node {
        if remaining == 0 {
            // Draw the next phase: ~92 % of time busy (>90 % utilisation).
            if rng.chance(0.92) {
                // A job's node draw: 300–850 W, held for 2–24 h.
                level_w = 300 + rng.next_below(551) as i64;
                remaining = (2 + rng.next_below(23) as i64) * 3600 / INTERVAL_S;
            } else {
                level_w = 250; // idle draw
                remaining = 1 + rng.next_below(8) as i64;
            }
        }
        remaining -= 1;
        let jitter = rng.next_below(3) as i64 - 1; // ±1 W meter noise
        out.push((i * INTERVAL_S, (level_w + jitter) as f64));
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke mode keeps ≥2 sealed chunks per series (15 d × 96/d = 1440
    // samples) so the chunk-cache path is still exercised.
    let (nodes, days) = if smoke { (128u32, 15i64) } else { (NODES, DAYS) };
    let samples_per_node = days * 86_400 / INTERVAL_S;
    let span = days * 86_400;

    // --- Part 1: a month of per-node telemetry through the pipeline -----
    println!("=== hpc-tsdb: {days} days, {nodes} nodes, {INTERVAL_S}s cadence ===");
    // Cache sized to hold every sealed chunk of the fleet so the warm pass
    // of the query benchmark measures pure cache-hit reads.
    let sealed_per_series = (samples_per_node as usize).div_ceil(512);
    let store = TsdbStore::new(StoreConfig {
        shards: 8,
        channel_capacity: 64,
        chunk_cache_capacity: (nodes as usize * sealed_per_series).next_power_of_two(),
    });
    let ids: Vec<_> = (0..nodes)
        .map(|n| {
            store.register(SeriesMeta {
                name: format!("node.{n}"),
                unit: "W".into(),
                interval_hint: INTERVAL_S,
            })
        })
        .collect();

    let t0 = Instant::now();
    let pipeline = store.pipeline();
    std::thread::scope(|s| {
        // Four producers, disjoint node ranges, feeding all eight shards.
        for producer_ids in ids.chunks(ids.len().div_ceil(4)) {
            let pipeline = &pipeline;
            s.spawn(move || {
                for &id in producer_ids {
                    // Ids are dense and allocated in node order on this
                    // fresh store, so the id doubles as the node index.
                    pipeline.send(id, node_month(id.0 as u32, samples_per_node));
                }
            });
        }
    });
    assert_eq!(pipeline.close(), 0, "no batch should be rejected");
    let elapsed = t0.elapsed();

    let samples = store.total_samples();
    let bytes = store.total_bytes();
    let bytes_per_sample = bytes as f64 / samples as f64;
    let raw_bytes = samples * 16; // (i64 ts, f64 value) uncompressed
    println!("ingested:          {:.1} M samples in {:.2} s", samples as f64 / 1e6, elapsed.as_secs_f64());
    println!("ingest rate:       {:.1} M samples/s", samples as f64 / 1e6 / elapsed.as_secs_f64());
    println!("compressed size:   {:.1} MiB ({bytes_per_sample:.2} bytes/sample)", bytes as f64 / (1 << 20) as f64);
    println!("compression ratio: {:.1}x vs 16-byte raw samples", raw_bytes as f64 / bytes as f64);
    assert!(bytes_per_sample < 3.0, "expected <3 bytes/sample, got {bytes_per_sample:.2}");

    // Query back: fleet mean power and one node's daily profile.
    let fleet_mean_w = store.global_aggregate().mean();
    println!("fleet mean draw:   {:.0} W/node ({:.0} kW over compute nodes)", fleet_mean_w, fleet_mean_w * f64::from(nodes) / 1000.0);
    let t_q = Instant::now();
    let (p95, plan) = store
        .with_series(ids[17], |s| aggregate(s, 0, span, AggOp::P95))
        .unwrap();
    println!("node.17 month p95: {p95:.0} W (plan: {plan:?}, {:.1} ms)", t_q.elapsed().as_secs_f64() * 1e3);
    let t_q = Instant::now();
    let daily = store
        .with_series(ids[17], |s| aligned_windows(s, 0, span, 86_400, AggOp::Mean))
        .unwrap();
    println!(
        "node.17 daily means: {:.0}..{:.0} W over {} days (rollup-planned, {:.1} ms)",
        daily.iter().map(|w| w.value).fold(f64::INFINITY, f64::min),
        daily.iter().map(|w| w.value).fold(f64::NEG_INFINITY, f64::max),
        daily.len(),
        t_q.elapsed().as_secs_f64() * 1e3,
    );

    // --- Part 2: the query-phase benchmark (sequential vs fan-out) ------
    println!();
    println!("=== query benchmark: {} series × {days} days, P95 (raw-scan) ===", ids.len());
    query_benchmark(&store, &ids, span, smoke);

    // --- Part 3: the campaign records straight into the same store ------
    println!();
    println!("=== campaign with per-node telemetry (1/10-scale facility) ===");
    let facility = experiment::scaled_facility(2022, 10);
    let start = SimTime::from_ymd(2022, 6, 1);
    let cfg = CampaignConfig {
        per_cabinet_telemetry: true,
        per_node_telemetry: true,
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(facility, cfg, start, OperatingPoint::AFTER_BIOS);
    let campaign_days = if smoke { 2 } else { 7 };
    let end = start + SimDuration::from_days(campaign_days);
    campaign.run_until(end);

    let cstore = campaign.telemetry_store();
    println!(
        "series recorded:   {} (facility + {} cabinets + {} nodes)",
        cstore.series_count(),
        campaign.cabinet_series_ids().len(),
        campaign.node_series_ids().len(),
    );
    println!(
        "store footprint:   {:.1} KiB for {} samples ({:.2} bytes/sample)",
        cstore.total_bytes() as f64 / 1024.0,
        cstore.total_samples(),
        cstore.total_bytes() as f64 / cstore.total_samples() as f64,
    );
    // Readbacks through the cached fan-out engine: facility mean and the
    // grouped all-cabinets reduction.
    let (week_mean, _) = campaign.facility_window_kw(start, end).unwrap();
    println!(
        "facility mean:     {:.0} kW (TimeSeries view agrees: {:.0} kW)",
        week_mean,
        campaign.power_series().mean(),
    );
    let group = campaign.cabinets_window_kw(start, end);
    println!(
        "cabinet fan-out:   {} cabinets sum to {:.0} kW (facility is noisy ±1%)",
        group.series, group.sum_of_means,
    );
    assert!((group.sum_of_means - week_mean).abs() / week_mean < 0.05);
    let qs = campaign.query_stats();
    println!(
        "campaign query stats: {} queries (plans: {} hour / {} minute / {} raw), \
         {} chunks decoded, {} cache hits, {} samples scanned, {:.2} ms",
        qs.queries,
        qs.plans_hour,
        qs.plans_minute,
        qs.plans_raw,
        qs.chunks_decoded,
        qs.chunk_cache_hits,
        qs.samples_scanned,
        qs.wall_millis(),
    );

    // --- Part 4: durability — snapshot, crash, recover ------------------
    println!();
    println!("=== persistence: snapshot + WAL, with injected crashes ===");
    persist_benchmark(&store, &ids, &campaign, smoke);
}

/// Durability phase: snapshot the fleet store and reopen it (bit-identical),
/// refuse a crash-torn snapshot, replay a torn WAL back to its valid prefix,
/// and checkpoint/resume the campaign. Emits `BENCH_tsdb_persist.json`.
fn persist_benchmark(store: &TsdbStore, ids: &[SeriesId], campaign: &Campaign, smoke: bool) {
    let dir = std::env::temp_dir().join(format!("telemetry-at-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Snapshot the whole fleet store, atomically, and time both directions.
    let snap = dir.join("fleet.tsnap");
    let t = Instant::now();
    let sstats = store.snapshot_to_path(&snap).expect("snapshot");
    let snapshot_write_ms = t.elapsed().as_secs_f64() * 1e3;
    let mib = sstats.bytes as f64 / (1 << 20) as f64;
    println!(
        "snapshot write:    {:.1} MiB ({} series, {:.1} M samples) in {snapshot_write_ms:.1} ms \
         ({:.0} MiB/s)",
        mib,
        sstats.series,
        sstats.samples as f64 / 1e6,
        mib / (snapshot_write_ms / 1e3),
    );

    let t = Instant::now();
    let back = TsdbStore::open_snapshot_path(&snap, StoreConfig::default()).expect("reopen");
    let snapshot_read_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(back.total_samples(), store.total_samples());
    // Spot-check one series bit-for-bit; the recovery test suite does all.
    let probe = ids[ids.len() / 2];
    let back_id = back.lookup(&format!("node.{}", probe.0)).expect("series survives");
    assert_eq!(
        store.with_series(probe, |s| s.scan(i64::MIN, i64::MAX)),
        back.with_series(back_id, |s| s.scan(i64::MIN, i64::MAX)),
        "recovered series must be bit-identical"
    );
    println!(
        "snapshot reopen:   {:.1} M samples in {snapshot_read_ms:.1} ms, bit-identical",
        back.total_samples() as f64 / 1e6
    );

    // A crash mid-write must never be mistaken for a snapshot.
    let torn = archer2_repro::tsdb::faults::partial_snapshot(store, sstats.bytes as usize / 2);
    let err = TsdbStore::open_snapshot(&mut torn.as_slice(), StoreConfig::default())
        .err()
        .expect("a half-written snapshot must not open");
    println!("torn snapshot:     refused ({err})");

    // WAL: ingest through a logged pipeline, tear the tail, replay.
    let wstore = TsdbStore::default();
    let wid = wstore.register(SeriesMeta {
        name: "facility".into(),
        unit: "kW".into(),
        interval_hint: INTERVAL_S,
    });
    let wal_path = dir.join("ingest.twal");
    let wal = WalWriter::create(&wal_path, WalConfig::default()).expect("create wal");
    let pipeline = wstore.pipeline_with_wal(wal);
    let wal_batches = if smoke { 200 } else { 2_000 };
    for b in 0..wal_batches as i64 {
        let batch: Vec<(i64, f64)> = (0..8)
            .map(|i| ((b * 8 + i) * INTERVAL_S, 2_000.0 + (b % 77) as f64 + i as f64 * 0.125))
            .collect();
        pipeline.send(wid, batch);
    }
    let wal_records = pipeline.wal_records();
    pipeline.close();
    let written = wstore.with_series(wid, |s| s.scan(i64::MIN, i64::MAX)).unwrap();

    // The crash tears the final ~10 % of the log off mid-record.
    let full_len = std::fs::metadata(&wal_path).unwrap().len();
    archer2_repro::tsdb::faults::truncate_file(&wal_path, full_len - full_len / 10)
        .expect("tear the log");
    let t = Instant::now();
    let (recovered, report) =
        recover(None, Some(&wal_path), StoreConfig::default()).expect("recover from torn WAL");
    let wal_replay_ms = t.elapsed().as_secs_f64() * 1e3;
    let wstats = report.wal.expect("wal replayed");
    let got = recovered.lookup("facility")
        .and_then(|id| recovered.with_series(id, |s| s.scan(i64::MIN, i64::MAX)))
        .unwrap_or_default();
    assert!(got.len() <= written.len());
    assert_eq!(got[..], written[..got.len()], "replay must be an exact prefix");
    println!(
        "torn-WAL replay:   {}/{} batches applied in {wal_replay_ms:.1} ms \
         (torn tail: {} bytes discarded, {} of {} samples recovered)",
        wstats.applied, wal_records, wstats.discarded_bytes, got.len(), written.len(),
    );

    // Campaign checkpoint → resume round trip on the Part-3 campaign.
    let ckpt = dir.join("campaign");
    let t = Instant::now();
    let cstats = campaign.checkpoint(&ckpt).expect("checkpoint");
    let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
    let cfg = CampaignConfig {
        per_cabinet_telemetry: true,
        per_node_telemetry: true,
        ..CampaignConfig::default()
    };
    let t = Instant::now();
    let resumed = Campaign::resume(
        experiment::scaled_facility(2022, 10),
        cfg,
        OperatingPoint::AFTER_BIOS,
        &ckpt,
    )
    .expect("resume");
    let resume_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        campaign.power_series().values(),
        resumed.power_series().values(),
        "resumed telemetry history must be identical"
    );
    println!(
        "campaign ckpt:     {} series / {} samples in {checkpoint_ms:.1} ms; \
         resumed bit-identical in {resume_ms:.1} ms (rejected samples: {})",
        cstats.series,
        cstats.samples,
        resumed.telemetry_stats().samples_rejected,
    );

    write_bench(
        "BENCH_tsdb_persist.json",
        Value::Map(vec![
            ("bench".into(), "tsdb_persist".to_string().to_value()),
            ("smoke".into(), smoke.to_value()),
            ("snapshot_series".into(), sstats.series.to_value()),
            ("snapshot_samples".into(), sstats.samples.to_value()),
            ("snapshot_bytes".into(), sstats.bytes.to_value()),
            ("snapshot_write_ms".into(), snapshot_write_ms.to_value()),
            ("snapshot_read_ms".into(), snapshot_read_ms.to_value()),
            ("wal_records".into(), wal_records.to_value()),
            ("wal_replay_ms".into(), wal_replay_ms.to_value()),
            ("wal_applied".into(), wstats.applied.to_value()),
            ("wal_discarded_bytes".into(), wstats.discarded_bytes.to_value()),
            ("wal_torn".into(), wstats.torn.to_value()),
            ("campaign_checkpoint_ms".into(), checkpoint_ms.to_value()),
            ("campaign_resume_ms".into(), resume_ms.to_value()),
            ("campaign_samples".into(), cstats.samples.to_value()),
        ]),
        &["snapshot_write_ms", "snapshot_read_ms", "snapshot_bytes", "wal_replay_ms"],
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Sequential-vs-fan-out benchmark over every node series: month-long P95
/// (always raw-scan, so the chunk cache is what's under test), cold cache
/// and warm, plus the grouped facility reduction. Emits
/// `BENCH_tsdb_query.json`.
fn query_benchmark(store: &TsdbStore, ids: &[SeriesId], span: i64, smoke: bool) {
    // The workers the fan-out will *actually* run, not the raw pool size:
    // recording the pool size here once produced `threads: 64` next to a
    // single-digit fan-out, and on a single-core host the speedup column
    // is not a measurement at all.
    let threads = fanout_workers(ids.len());
    if threads == 1 {
        eprintln!(
            "warning: fan-out comparison running single-threaded \
             ({} series, 1 worker) — speedup_cold/speedup_warm measure \
             overhead, not parallelism",
            ids.len()
        );
    }

    // Sequential baseline, cold cache.
    store.chunk_cache().clear();
    store.reset_query_stats();
    let t = Instant::now();
    let sequential: Vec<f64> = ids
        .iter()
        .map(|&id| store_aggregate(store, id, 0, span, AggOp::P95).unwrap().0)
        .collect();
    let seq_ms = t.elapsed().as_secs_f64() * 1e3;
    let seq_stats = store.query_stats();

    // Fan-out, cold cache.
    store.chunk_cache().clear();
    store.reset_query_stats();
    let t = Instant::now();
    let cold: Vec<_> = fanout_aggregate(store, ids, 0, span, AggOp::P95);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let cold_stats = store.query_stats();

    // Fan-out again, cache warm from the cold pass.
    store.reset_query_stats();
    let t = Instant::now();
    let warm: Vec<_> = fanout_aggregate(store, ids, 0, span, AggOp::P95);
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let warm_stats = store.query_stats();

    // Grouped reduction (the "all cabinets → facility" shape) on the warm
    // cache.
    let t = Instant::now();
    let group = fanout_group(store, ids, 0, span);
    let group_ms = t.elapsed().as_secs_f64() * 1e3;

    // Fan-out must answer exactly what the sequential loop answered.
    for (s, f) in sequential.iter().zip(cold.iter().chain(warm.iter())) {
        let f = f.unwrap().0;
        assert!(
            (s - f).abs() <= 1e-9 * s.abs().max(1.0),
            "fan-out {f} diverged from sequential {s}"
        );
    }
    assert_eq!(group.series, ids.len());
    let speedup = seq_ms / cold_ms;
    let warm_speedup = seq_ms / warm_ms;
    println!("sequential (cold cache):  {seq_ms:>9.1} ms  ({} chunks decoded)", seq_stats.chunks_decoded);
    println!("fan-out    (cold cache):  {cold_ms:>9.1} ms  ({speedup:.1}x, {threads} threads)");
    println!(
        "fan-out    (warm cache):  {warm_ms:>9.1} ms  ({warm_speedup:.1}x, hit rate {:.0}%)",
        warm_stats.cache_hit_rate() * 100.0
    );
    println!("fan-out group reduction:  {group_ms:>9.1} ms  (sum of means {:.0} W)", group.sum_of_means);

    assert!(
        warm_stats.cache_hit_rate() > 0.5,
        "warm pass should be served from cache, hit rate {:.2}",
        warm_stats.cache_hit_rate()
    );
    // The parallel win only shows where there are cores to win with; CI
    // boxes can be single-core, so gate the hard floor on the pool size.
    if threads >= 8 {
        assert!(speedup >= 4.0, "expected ≥4x fan-out speedup on {threads} threads, got {speedup:.1}x");
    }

    // --- Columnar + zone-map phase: compact, then raw-plan aggregates ----
    //
    // The window ends at an *interior* zone boundary (plus one second, so
    // the planner cannot route it to a rollup level): the pre-columnar
    // reference kernel sees one big partially-overlapping compacted chunk
    // and must row-decode and filter all of it, while the zone-mapped path
    // merges the covered zones' pre-computed aggregates, skips the rest,
    // and never touches sample data.
    let sealed_per_series = (span / INTERVAL_S - 1) / 512;
    assert!(sealed_per_series >= 2, "need ≥2 sealed chunks per series for an interior zone cut");
    let zone_cut = ((sealed_per_series - 1) * 512 - 1) * INTERVAL_S + 1;

    let t = Instant::now();
    let cstats = store.compact();
    let compact_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cstats.series, ids.len() as u64, "every node series compacts");
    println!(
        "compaction:               {compact_ms:>9.1} ms  ({} chunks -> {}, {} rewritten)",
        cstats.chunks_before, cstats.chunks_after, cstats.chunks_compacted
    );

    // "Before": the retained row-iterator kernel over the exact same
    // windows on the exact same (compacted) store, timed in this run on
    // this machine — what every query would cost without zone maps.
    let t = Instant::now();
    let reference: Vec<f64> = ids
        .iter()
        .map(|&id| store.with_series(id, |s| s.scan_aggregate_reference(0, zone_cut)).unwrap())
        .map(|agg| agg.mean())
        .collect();
    let reference_ms = t.elapsed().as_secs_f64() * 1e3;

    // First columnar pass absorbs any one-time effects; the second is the
    // reported warm number (zone-covered queries have no decode to cache,
    // so the two should hardly differ).
    for &id in ids {
        store_aggregate(store, id, 0, zone_cut, AggOp::Mean).unwrap();
    }
    store.reset_query_stats();
    let t = Instant::now();
    let mut columnar_us: Vec<f64> = Vec::with_capacity(ids.len());
    let mut columnar = Vec::with_capacity(ids.len());
    for &id in ids {
        let tq = Instant::now();
        let (v, _plan) = store_aggregate(store, id, 0, zone_cut, AggOp::Mean).unwrap();
        columnar_us.push(tq.elapsed().as_secs_f64() * 1e6);
        columnar.push(v);
    }
    let columnar_ms = t.elapsed().as_secs_f64() * 1e3;
    let col_stats = store.query_stats();
    columnar_us.sort_by(|a, b| a.total_cmp(b));
    let warm_columnar_p95_us = columnar_us[(columnar_us.len() * 95 / 100).min(columnar_us.len() - 1)];

    for (r, c) in reference.iter().zip(&columnar) {
        assert!(
            (r - c).abs() <= 1e-9 * r.abs().max(1.0),
            "zone-served mean {c} diverged from reference {r}"
        );
    }
    assert_eq!(col_stats.plans_raw, ids.len() as u64, "zone-cut windows must plan raw");
    assert_eq!(
        col_stats.chunks_decoded + col_stats.chunk_cache_hits,
        0,
        "zone-covered aggregates must not touch sample data"
    );
    assert!(col_stats.blocks_pruned >= ids.len() as u64 * sealed_per_series as u64);
    let speedup_columnar = reference_ms / columnar_ms;
    println!("reference scan kernel:    {reference_ms:>9.1} ms  (row decode + filter)");
    println!(
        "zone-map aggregates:      {columnar_ms:>9.1} ms  ({speedup_columnar:.1}x, 0 chunks decoded, \
         {} blocks pruned, p95 {warm_columnar_p95_us:.0} us)",
        col_stats.blocks_pruned
    );
    assert!(
        speedup_columnar >= 2.0,
        "expected ≥2x zone-map speedup over the row kernel, got {speedup_columnar:.1}x"
    );

    // Benchmark record: written, then parsed back as a well-formedness check.
    let record = Value::Map(vec![
        ("bench".into(), "tsdb_query".to_string().to_value()),
        ("smoke".into(), smoke.to_value()),
        ("series".into(), (ids.len() as u64).to_value()),
        ("span_s".into(), (span as u64).to_value()),
        ("threads".into(), (threads as u64).to_value()),
        ("sequential_ms".into(), seq_ms.to_value()),
        ("fanout_cold_ms".into(), cold_ms.to_value()),
        ("fanout_warm_ms".into(), warm_ms.to_value()),
        ("group_ms".into(), group_ms.to_value()),
        ("speedup_cold".into(), speedup.to_value()),
        ("speedup_warm".into(), warm_speedup.to_value()),
        ("warm_cache_hit_rate".into(), warm_stats.cache_hit_rate().to_value()),
        ("chunks_decoded_cold".into(), cold_stats.chunks_decoded.to_value()),
        ("chunk_cache_hits_warm".into(), warm_stats.chunk_cache_hits.to_value()),
        ("samples_scanned_cold".into(), cold_stats.samples_scanned.to_value()),
        ("compact_ms".into(), compact_ms.to_value()),
        ("chunks_compacted".into(), cstats.chunks_compacted.to_value()),
        ("reference_scan_ms".into(), reference_ms.to_value()),
        ("columnar_scan_ms".into(), columnar_ms.to_value()),
        ("warm_columnar_p95_us".into(), warm_columnar_p95_us.to_value()),
        ("speedup_columnar".into(), speedup_columnar.to_value()),
        ("blocks_pruned".into(), col_stats.blocks_pruned.to_value()),
    ]);
    write_bench(
        "BENCH_tsdb_query.json",
        record,
        &[
            "sequential_ms",
            "fanout_cold_ms",
            "fanout_warm_ms",
            "warm_cache_hit_rate",
            "speedup_columnar",
            "warm_columnar_p95_us",
            "blocks_pruned",
        ],
    );
}
