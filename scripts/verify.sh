#!/usr/bin/env bash
# Offline-safe verification gate for the workspace.
#
# Every dependency is either a workspace crate or a vendored shim under
# shims/ (see DESIGN.md §5), so all three steps must succeed with no
# network access. --offline makes any accidental registry dependency a
# hard failure instead of a hang.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "verify: OK"
