#!/usr/bin/env bash
# Offline-safe verification gate for the workspace.
#
# Every dependency is either a workspace crate or a vendored shim under
# shims/ (see DESIGN.md §5), so all three steps must succeed with no
# network access. --offline makes any accidental registry dependency a
# hard failure instead of a hang.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== query benchmark smoke (BENCH_tsdb_query.json) =="
rm -f BENCH_tsdb_query.json
cargo run --release --offline --example telemetry_at_scale -- --smoke
test -s BENCH_tsdb_query.json
for key in sequential_ms fanout_cold_ms fanout_warm_ms warm_cache_hit_rate; do
    grep -q "\"$key\"" BENCH_tsdb_query.json \
        || { echo "BENCH_tsdb_query.json missing key: $key" >&2; exit 1; }
done

echo "verify: OK"
