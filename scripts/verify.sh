#!/usr/bin/env bash
# Offline-safe verification gate for the workspace.
#
# Every dependency is either a workspace crate or a vendored shim under
# shims/ (see DESIGN.md §5), so all three steps must succeed with no
# network access. --offline makes any accidental registry dependency a
# hard failure instead of a hang.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps

echo "== crash-recovery fault injection suite =="
cargo test -q --offline -p hpc-tsdb --test tsdb_recovery

echo "== facility fault-injection suite =="
cargo test -q --offline -p hpc-faults
cargo test -q --offline -p archer2-core --lib fault_campaign_tests

echo "== benchmark smoke (BENCH_tsdb_query.json, BENCH_tsdb_persist.json) =="
# Keep the previous record (full-scale or prior smoke run) around as the
# regression reference before the smoke run overwrites it.
if [ -s BENCH_tsdb_query.json ]; then
    cp BENCH_tsdb_query.json BENCH_tsdb_query.ref.json
fi
rm -f BENCH_tsdb_query.json BENCH_tsdb_persist.json
cargo run --release --offline --example telemetry_at_scale -- --smoke
test -s BENCH_tsdb_query.json
for key in sequential_ms fanout_cold_ms fanout_warm_ms warm_cache_hit_rate \
           speedup_columnar warm_columnar_p95_us blocks_pruned; do
    grep -q "\"$key\"" BENCH_tsdb_query.json \
        || { echo "BENCH_tsdb_query.json missing key: $key" >&2; exit 1; }
done
# Columnar zone-map regression gate: the fresh speedup must stay within 10%
# of the previous record (the example itself already asserts >= 2x). On a
# fresh clone there is no previous record — that is a documented skip, not
# a failure; the gate arms itself on the second run.
if [ -s BENCH_tsdb_query.ref.json ]; then
    ref=$(sed -n 's/.*"speedup_columnar": \([0-9.eE+-]*\).*/\1/p' BENCH_tsdb_query.ref.json)
    fresh=$(sed -n 's/.*"speedup_columnar": \([0-9.eE+-]*\).*/\1/p' BENCH_tsdb_query.json)
    if [ -z "$ref" ]; then
        echo "skip: speedup_columnar gate (reference record predates the key; it will arm next run)"
    elif [ -z "$fresh" ]; then
        echo "BENCH_tsdb_query.json lost its speedup_columnar key" >&2; exit 1
    else
        awk -v r="$ref" -v f="$fresh" 'BEGIN { exit !(f >= 0.9 * r) }' \
            || { echo "speedup_columnar regressed >10%: $fresh vs reference $ref" >&2; exit 1; }
    fi
    rm -f BENCH_tsdb_query.ref.json
else
    echo "skip: speedup_columnar regression gate (no prior BENCH_tsdb_query.json on this clone)"
fi
test -s BENCH_tsdb_persist.json
for key in snapshot_write_ms snapshot_read_ms snapshot_bytes wal_replay_ms; do
    grep -q "\"$key\"" BENCH_tsdb_persist.json \
        || { echo "BENCH_tsdb_persist.json missing key: $key" >&2; exit 1; }
done

echo "== fault storm smoke (BENCH_fault_storm.json + determinism gate) =="
rm -f BENCH_fault_storm.json BENCH_fault_storm.run1.json
cargo run --release --offline --example fault_storm -- --smoke
test -s BENCH_fault_storm.json
for key in schedule_digest telemetry_digest mean_kw emissions_tco2 invariant_violations; do
    grep -q "\"$key\"" BENCH_fault_storm.json \
        || { echo "BENCH_fault_storm.json missing key: $key" >&2; exit 1; }
done
grep -q '"invariant_violations": 0' BENCH_fault_storm.json \
    || { echo "fault storm reported invariant violations" >&2; exit 1; }
# Two same-seed runs must produce bit-identical fault schedules and telemetry.
mv BENCH_fault_storm.json BENCH_fault_storm.run1.json
cargo run --release --offline --example fault_storm -- --smoke >/dev/null
for key in schedule_digest telemetry_digest; do
    a=$(grep "\"$key\"" BENCH_fault_storm.run1.json)
    b=$(grep "\"$key\"" BENCH_fault_storm.json)
    [ "$a" = "$b" ] \
        || { echo "determinism gate: $key differs between same-seed runs" >&2; exit 1; }
done
rm -f BENCH_fault_storm.run1.json

echo "== campaign throughput smoke (BENCH_campaign.json + determinism gate) =="
rm -f BENCH_campaign.json BENCH_campaign.run1.json
cargo run --release --offline --example campaign_throughput -- --smoke
test -s BENCH_campaign.json
for key in sim_days_per_s samples_per_s events_per_s digest_faults_on digest_faults_off digests_match invariant_violations; do
    grep -q "\"$key\"" BENCH_campaign.json \
        || { echo "BENCH_campaign.json missing key: $key" >&2; exit 1; }
done
# The example already asserts cold == warm digests per scenario; the record
# must confirm it and report a clean invariant audit.
grep -q '"digests_match": true' BENCH_campaign.json \
    || { echo "campaign throughput: cold/warm digests differ" >&2; exit 1; }
grep -q '"invariant_violations": 0' BENCH_campaign.json \
    || { echo "campaign throughput reported invariant violations" >&2; exit 1; }
# Two same-seed sweeps must produce bit-identical telemetry, faults on and off.
mv BENCH_campaign.json BENCH_campaign.run1.json
cargo run --release --offline --example campaign_throughput -- --smoke >/dev/null
for key in digest_faults_on digest_faults_off; do
    a=$(grep "\"$key\"" BENCH_campaign.run1.json)
    b=$(grep "\"$key\"" BENCH_campaign.json)
    [ "$a" = "$b" ] \
        || { echo "determinism gate: $key differs between same-seed sweeps" >&2; exit 1; }
done
rm -f BENCH_campaign.run1.json

echo "== serve protocol + concurrency suites =="
cargo test -q --offline -p hpc-serve

echo "== serve cache / single-flight / batch suite =="
cargo test -q --offline -p hpc-serve --test serve_cache

echo "== serve smoke (BENCH_tsdb_serve.json) =="
# Keep the previous record around as the regression reference before the
# smoke run overwrites it (same idiom as the columnar gate above).
if [ -s BENCH_tsdb_serve.json ]; then
    cp BENCH_tsdb_serve.json BENCH_tsdb_serve.ref.json
fi
rm -f BENCH_tsdb_serve.json
cargo run --release --offline --example tsdb_serve -- --smoke
test -s BENCH_tsdb_serve.json
for key in qps p50_us p95_us p99_us batched_p99_us ingest_degradation_pct \
           result_cache_hit_rate coalesced_queries rejected_frames; do
    grep -q "\"$key\"" BENCH_tsdb_serve.json \
        || { echo "BENCH_tsdb_serve.json missing key: $key" >&2; exit 1; }
done
# Under the generous default budgets every frame must have been served:
# no admission rejections, no protocol errors, no error responses.
grep -q '"rejected_frames": 0' BENCH_tsdb_serve.json \
    || { echo "serve smoke rejected frames" >&2; exit 1; }
# Read-path scale-out regression gate: ingest degradation (lower is
# better) must not regress >10% against the previous record. The example
# already reports the best of two back-to-back pairs; on top of that, any
# value within the 145% acceptance target is never a regression (a lucky
# previous run must not turn within-target jitter into a failure), so the
# 10% rule arms above the target. Skip (documented) on a fresh clone.
if [ -s BENCH_tsdb_serve.ref.json ]; then
    ref=$(sed -n 's/.*"ingest_degradation_pct": \([0-9.eE+-]*\).*/\1/p' BENCH_tsdb_serve.ref.json)
    fresh=$(sed -n 's/.*"ingest_degradation_pct": \([0-9.eE+-]*\).*/\1/p' BENCH_tsdb_serve.json)
    if [ -z "$ref" ]; then
        echo "skip: ingest_degradation_pct gate (reference record predates the key; it will arm next run)"
    elif [ -z "$fresh" ]; then
        echo "BENCH_tsdb_serve.json lost its ingest_degradation_pct key" >&2; exit 1
    else
        awk -v r="$ref" -v f="$fresh" \
            'BEGIN { lim = 1.1 * r; if (lim < 145) lim = 145; exit !(f <= lim) }' \
            || { echo "ingest_degradation_pct regressed >10%: $fresh vs reference $ref" >&2; exit 1; }
    fi
    rm -f BENCH_tsdb_serve.ref.json
else
    echo "skip: ingest_degradation_pct regression gate (no prior BENCH_tsdb_serve.json on this clone)"
fi

echo "== serve chaos suite (deterministic fault storm) =="
cargo test -q --offline -p hpc-serve --test serve_chaos

echo "== serve chaos smoke (BENCH_serve_chaos.json) =="
rm -f BENCH_serve_chaos.json
cargo run --release --offline --example serve_chaos -- --smoke
test -s BENCH_serve_chaos.json
for key in requests success_rate retries reconnects honoured_retry_after \
           faults_injected evictions hung_requests p50_us_clean p99_us_clean \
           p50_us_chaos p99_us_chaos replies_bit_identical drained_sessions \
           force_closed; do
    grep -q "\"$key\"" BENCH_serve_chaos.json \
        || { echo "BENCH_serve_chaos.json missing key: $key" >&2; exit 1; }
done
# The resilience contract under the default storm: every request succeeds
# (retries absorb the faults), nothing hangs past its deadline, and the
# replies that survive chaos are byte-identical to the clean path.
grep -q '"success_rate": 1.0' BENCH_serve_chaos.json \
    || { echo "serve chaos: success_rate must be exactly 1.0 under the default plan" >&2; exit 1; }
grep -q '"hung_requests": 0' BENCH_serve_chaos.json \
    || { echo "serve chaos: a request outlived its deadline" >&2; exit 1; }
grep -q '"replies_bit_identical": true' BENCH_serve_chaos.json \
    || { echo "serve chaos: chaos-path replies diverged from the clean path" >&2; exit 1; }

echo "== distributed sweep suite (worker processes, kill + resume) =="
cargo test -q --offline --test sweep_distributed

echo "== distributed sweep smoke (BENCH_sweep.json + bit-identity gate) =="
rm -f BENCH_sweep.json
cargo run --release --offline --example sweep_distributed -- --smoke
test -s BENCH_sweep.json
for key in scenarios shards workers scenarios_per_s_distributed \
           resume_overhead_pct resumed_shards stolen_shards digests_match sweep_digest; do
    grep -q "\"$key\"" BENCH_sweep.json \
        || { echo "BENCH_sweep.json missing key: $key" >&2; exit 1; }
done
# The headline contract: distributed, resumed-after-kill and stolen-shard
# sweeps all merged bit-identically to the in-process reference.
grep -q '"digests_match": true' BENCH_sweep.json \
    || { echo "distributed sweep diverged from the in-process reference" >&2; exit 1; }

echo "verify: OK"
