//! Offline shim for `criterion`: the macro and builder surface the bench
//! targets use, timing each closure with `std::time::Instant` and printing
//! a one-line summary (mean time per iteration plus derived throughput).
//!
//! No statistics, warm-up or HTML reports — just enough to keep
//! `cargo bench` runnable and the bench sources unchanged.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements (e.g. FLOPs) processed per iteration.
    Elements(u64),
}

/// Times one benchmark body over a fixed number of iterations.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn report(id: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:.2} GiB/s", n as f64 / per_iter / (1u64 << 30) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.3} Gelem/s", n as f64 / per_iter / 1e9)
        }
        None => String::new(),
    };
    println!("bench {id:<40} {:>12.3} ms/iter{rate}", per_iter * 1e3);
}

/// Entry point handed to each benchmark target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Time a single benchmark body.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.sample_size, elapsed: Duration::ZERO };
        f(&mut b);
        report(id, b.iters, b.elapsed, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, throughput: None, _c: self }
    }
}

/// A named group sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration work so the report derives a rate.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Time one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.sample_size, elapsed: Duration::ZERO };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.iters, b.elapsed, self.throughput);
        self
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Define a benchmark group function from target functions, with either
/// the positional or the `name =` / `config =` / `targets =` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Bytes(1 << 20));
        g.bench_function("copy", |b| {
            let src = vec![1u8; 1 << 20];
            b.iter(|| src.clone())
        });
        g.finish();
    }

    criterion_group!(smoke_benches, target);

    #[test]
    fn harness_runs_targets() {
        smoke_benches();
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn configured_form_runs() {
        configured();
    }
}
