//! The self-describing value model the shim serialises through.

/// A JSON-shaped number. Integer tokens keep full 64-bit precision so ids
/// and unix timestamps survive a round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Lossy view as `f64` (exact for floats and small integers).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::U(u) => *u as f64,
            Number::I(i) => *i as f64,
            Number::F(f) => *f,
        }
    }
}

/// A JSON-shaped tree. Maps preserve insertion order (a `Vec` of pairs) so
/// serialised output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look a key up in an insertion-ordered object.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
