//! Offline shim for `serde`.
//!
//! The build container has no registry access, so the workspace vendors the
//! *surface* of serde it actually uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, plus `serde_json::{to_string, from_str}`.
//! Instead of serde's visitor-based data model, everything funnels through a
//! small self-describing [`value::Value`] tree (adequate for JSON, which is
//! the only format the workspace serialises to).
//!
//! Supported derive shapes — the ones present in this repository:
//! named-field structs, newtype/tuple structs, unit enum variants, newtype
//! variants, tuple variants, struct variants, and `#[serde(skip)]` fields
//! (skipped on serialise, `Default::default()` on deserialise).

// Let the generated `::serde::...` paths resolve inside this crate's own
// tests as well as in downstream crates.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

/// Error produced while converting a [`Value`] back into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Construct from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing value model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the self-describing value model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Num(Number::I(*self as i64))
                } else {
                    Value::Num(Number::U(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Num(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| DeError::msg(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Num(Number::F(f)) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!(
                        "expected integer for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Num(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| DeError::msg(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!(
                        "expected unsigned integer for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+ ; $n:expr))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_seq()
                    .ok_or_else(|| DeError::msg(format!("expected array, got {v:?}")))?;
                if items.len() != $n {
                    return Err(DeError::msg(format!(
                        "expected tuple of {}, got {}", $n, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
}

// A `Value` is already the data model: serialising is identity. This lets
// code that assembles records as raw `Value` trees (benchmark writers, the
// sweep layer's checksummed JSON helpers) pass them straight to
// `serde_json::to_string` without a newtype wrapper.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        a: u64,
        b: f64,
        label: String,
        seq: Vec<u32>,
        opt: Option<i32>,
        #[serde(skip)]
        cache: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Pair(u32, f64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mixed {
        Unit,
        New(f64),
        Tup(u32, u32),
        Struct { x: u64, y: String },
    }

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(x: T) {
        let v = x.to_value();
        let back = T::from_value(&v).expect("roundtrip");
        assert_eq!(back, x);
    }

    #[test]
    fn named_struct_roundtrip() {
        roundtrip(Named {
            a: u64::MAX,
            b: -0.125,
            label: "kW \"quoted\" \u{1F600}".into(),
            seq: vec![1, 2, 3],
            opt: Some(-5),
            cache: None,
        });
    }

    #[test]
    fn skip_field_uses_default() {
        let x = Named {
            a: 1,
            b: 2.0,
            label: String::new(),
            seq: vec![],
            opt: None,
            cache: Some("not serialised".into()),
        };
        let v = x.to_value();
        let back = Named::from_value(&v).unwrap();
        assert_eq!(back.cache, None);
        if let Value::Map(m) = &v {
            assert!(m.iter().all(|(k, _)| k != "cache"));
        } else {
            panic!("expected map");
        }
    }

    #[test]
    fn tuple_structs_roundtrip() {
        roundtrip(Newtype(42));
        roundtrip(Pair(7, 1.5));
        // Newtype serialises transparently.
        assert_eq!(Newtype(9).to_value(), Value::Num(Number::U(9)));
    }

    #[test]
    fn enum_shapes_roundtrip() {
        roundtrip(Mixed::Unit);
        roundtrip(Mixed::New(2.5));
        roundtrip(Mixed::Tup(1, 2));
        roundtrip(Mixed::Struct {
            x: 3,
            y: "hi".into(),
        });
        assert_eq!(Mixed::Unit.to_value(), Value::Str("Unit".into()));
    }
}
