//! Offline shim for `bytes`: the `Bytes` / `BytesMut` / `Buf` / `BufMut`
//! subset this workspace uses.
//!
//! `Bytes` is an `Arc<[u8]>` plus an offset window, so clones and
//! `slice()` are O(1) and share storage — the property the tsdb chunk
//! format relies on (sealed chunks are handed to readers without copying).

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window sharing the same storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

/// Growable mutable byte buffer; `freeze()` converts to [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Convert into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side extension methods (big-endian, like the real crate).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side extension methods consuming from the front (big-endian).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Drop `n` bytes from the front.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    ///
    /// # Panics
    /// Panics if the buffer is exhausted (like the real crate).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_slice(b"tsdb");
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 4);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.chunk(), b"tsdb");
        r.advance(4);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(b.len(), 8);
    }
}
