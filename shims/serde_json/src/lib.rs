//! Offline shim for `serde_json`: serialise the [`serde::Value`] model to
//! JSON text and parse it back.
//!
//! Numbers round-trip: integer tokens keep 64-bit precision, floats print
//! via Rust's shortest-representation `Display` (which `f64::from_str`
//! recovers exactly).

use serde::{DeError, Deserialize, Number, Serialize, Value};

/// Error for both parsing and typed reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialise to compact JSON.
///
/// # Errors
/// Returns an error if a number is non-finite (JSON has no NaN/Inf).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialise to human-indented JSON.
///
/// # Errors
/// Returns an error if a number is non-finite.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into a typed structure.
///
/// # Errors
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse_value(text)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Num(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Num(Number::F(f)) => {
            if !f.is_finite() {
                return Err(Error::msg(format!("non-finite number {f} is not valid JSON")));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep the float/integer distinction through a round-trip.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into the value model.
///
/// # Errors
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for supplementary chars.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    s.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::msg("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                            } else {
                                s.push(
                                    char::from_u32(cp).ok_or_else(|| Error::msg("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the original text.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let cp = u32::from_str_radix(chunk, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        let num = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I(i)
            } else {
                Number::F(text.parse::<f64>().map_err(|_| Error::msg("bad number"))?)
            }
        } else {
            Number::F(text.parse::<f64>().map_err(|_| Error::msg("bad number"))?)
        };
        Ok(Value::Num(num))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        id: u64,
        power_kw: f64,
        unit: String,
        tags: Vec<String>,
        note: Option<String>,
    }

    #[test]
    fn typed_roundtrip() {
        let s = Sample {
            id: u64::MAX,
            power_kw: 3219.875,
            unit: "kW".into(),
            tags: vec!["a".into(), "b\n\"c\"".into()],
            note: None,
        };
        let json = to_string(&s).unwrap();
        let back: Sample = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn float_precision_roundtrip() {
        for &f in &[0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -2.5e-17, 0.0, -0.0] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {json}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let json = to_string(&5.0f64).unwrap();
        assert_eq!(json, "5.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 5.0);
    }

    #[test]
    fn pretty_output_parses_back() {
        let s = Sample {
            id: 1,
            power_kw: 2.0,
            unit: "kW".into(),
            tags: vec![],
            note: Some("hi".into()),
        };
        let json = to_string_pretty(&s).unwrap();
        assert!(json.contains('\n'));
        let back: Sample = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Value::Str("π \u{1F600} \"q\" \\ \u{7}".into());
        let mut out = String::new();
        write_value(&v, &mut out, None, 0).unwrap();
        let back = parse_value(&out).unwrap();
        assert_eq!(back, v);
        // Explicit surrogate-pair escape.
        let parsed = parse_value("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed, Value::Str("\u{1F600}".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{,}").is_err());
        assert!(parse_value("[1 2]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 trailing").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
