//! Offline shim for `proptest`: the macro and strategy surface this
//! workspace's property tests use, driven by a deterministic per-test RNG
//! instead of shrinking machinery.
//!
//! Each `proptest!` test derives its seed from its module path + name, so
//! every run samples the same cases — failures reproduce exactly with no
//! persistence files. There is no shrinking: the failing inputs are
//! reported as sampled.

/// Test-case driver types: RNG, config and the error channel the
/// `prop_assert*` macros use.
pub mod test_runner {
    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (FNV-1a of the name).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325_u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, 1]` (both endpoints reachable).
        pub fn next_f64_inclusive(&mut self) -> f64 {
            self.next_u64() as f64 / u64::MAX as f64
        }
    }

    /// How a single sampled case ended, when it did not simply pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this input out; try another.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    /// Runner configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value-generation strategies: ranges, tuples, `Just`, `prop_map` and
/// weighted unions.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can produce values of an associated type from the
    /// test RNG. The shim samples directly; there is no shrink tree.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let pick = u128::from(rng.next_u64()) % span;
                    (lo + pick as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let pick = u128::from(rng.next_u64()) % span;
                    (lo + pick as i128) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let v = self.start + rng.next_f64() * (self.end - self.start);
            v.clamp(self.start, self.end)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            (lo + rng.next_f64_inclusive() * (hi - lo)).clamp(lo, hi)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Weighted choice between boxed strategies of one value type
    /// (what `prop_oneof!` builds).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        ///
        /// # Panics
        /// Panics if there are no arms or all weights are zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u32 = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = (rng.next_u64() % u64::from(self.total)) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed incorrectly")
        }
    }

    /// Box one `prop_oneof!` arm (helper the macro expands to; unifies
    /// heterogeneous strategy types behind one trait object).
    pub fn weighted<T, S>(weight: u32, strat: S) -> (u32, Box<dyn Strategy<Value = T>>)
    where
        S: Strategy<Value = T> + 'static,
    {
        (weight, Box::new(strat))
    }
}

/// Strategies for collections (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy generating `Vec`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// `bool`-valued strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Full-range numeric strategies (`proptest::num::u64::ANY` etc.).
pub mod num {
    macro_rules! any_mod {
        ($($m:ident : $t:ty => $conv:expr),*) => {$(
            /// Full-range strategies for the matching primitive.
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Strategy over the type's entire value range.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// The type's entire value range.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        let raw = rng.next_u64();
                        #[allow(clippy::cast_possible_truncation)]
                        let conv: fn(u64) -> $t = $conv;
                        conv(raw)
                    }
                }
            }
        )*};
    }

    any_mod! {
        u64: u64 => |r| r,
        i64: i64 => |r| r as i64,
        u32: u32 => |r| r as u32,
        i32: i32 => |r| r as i32
    }
}

/// Everything tests normally import: the `Strategy` trait, `Just`, the
/// config type and the assertion/definition macros.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Assert inside a proptest case; failure reports the sampled inputs'
/// case index and the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __l, __r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{}: `{:?}` != `{:?}`",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Reject the current inputs (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Weighted (or uniform) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::weighted($weight, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::weighted(1, $strat)),+
        ])
    };
}

/// Define deterministic property tests: each `fn name(arg in strategy)`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Bind the strategies once, reusing the argument names.
            let ($($arg,)+) = ($($strat,)+);
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(64);
            while __accepted < __config.cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest '{}': too many rejected cases ({} attempts)",
                    stringify!($name), __attempts
                );
                __attempts += 1;
                // Shadow each strategy binding with a sampled value.
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::sample(&$arg, &mut __rng),)+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "proptest '{}' failed on case {}: {}",
                            stringify!($name), __accepted, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, f64)> {
        (1u32..=8, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 10u64..20,
            y in -5i64..=5,
            z in 0.25f64..=0.75,
            flip in crate::bool::ANY,
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..=0.75).contains(&z));
            prop_assert!(usize::from(flip) <= 1);
        }

        #[test]
        fn vec_and_oneof_compose(
            items in crate::collection::vec(prop_oneof![3 => Just(1u8), 1 => Just(2u8)], 1..40)
        ) {
            prop_assert!(!items.is_empty() && items.len() < 40);
            prop_assert!(items.iter().all(|&v| v == 1 || v == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn mapped_tuple_strategy(pair in arb_pair()) {
            let (a, b) = pair;
            prop_assert_eq!(a % 2, 0);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn assume_rejects_without_consuming_budget(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "assume should have filtered odd {}", n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = crate::test_runner::TestRng::for_test("fixed-name");
        let mut r2 = crate::test_runner::TestRng::for_test("fixed-name");
        let a: Vec<u64> = (0..32).map(|_| s.sample(&mut r1)).collect();
        let b: Vec<u64> = (0..32).map(|_| s.sample(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
