//! Offline shim for `crossbeam`: the `channel` module subset this
//! workspace uses (bounded/unbounded MPSC channels), backed by
//! `std::sync::mpsc`.

/// Multi-producer single-consumer channels with bounded and unbounded
/// flavours, matching the `crossbeam_channel` call surface.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Cloneable sending half of a channel.
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Backpressured sender (blocks when the buffer is full).
        Bounded(mpsc::SyncSender<T>),
        /// Unbounded sender (never blocks).
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking if a bounded buffer is full.
        ///
        /// # Errors
        /// Returns the value back if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives.
        ///
        /// # Errors
        /// Returns an error once every sender has been dropped and the
        /// buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Iterate over values until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Create a channel buffering at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    /// Create a channel with no backpressure.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_fan_in() {
        let (tx, rx) = channel::bounded::<u64>(4);
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..10 {
                        tx.send(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let got: Vec<u64> = rx.into_iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 30);
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }
}
