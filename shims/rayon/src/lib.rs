//! Offline shim for `rayon`: the `par_iter` / `par_iter_mut` /
//! `par_chunks_mut` slice entry points this workspace uses, returning
//! ordinary sequential `std` iterators.
//!
//! Semantics are identical to rayon for order-independent bodies (all the
//! kernels here write disjoint outputs); only the speedup is absent. Code
//! stays written in the parallel idiom so a real rayon drop-in restores
//! multi-core execution with no source change.

/// The rayon-style prelude: import `*` to get the `par_*` methods.
pub mod prelude {
    /// Parallel-iterator entry points on slices (sequential fallback).
    pub trait ParallelSlice<T> {
        /// Iterate shared references ("parallel" view of `iter`).
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Iterate in fixed-size chunks ("parallel" view of `chunks`).
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// Mutable parallel-iterator entry points on slices.
    pub trait ParallelSliceMut<T> {
        /// Iterate exclusive references ("parallel" view of `iter_mut`).
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Iterate mutable fixed-size chunks ("parallel" view of
        /// `chunks_mut`).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn zip_enumerate_for_each_chain() {
        let mut a = [0.0f64; 16];
        let b: Vec<f64> = (0..16).map(f64::from).collect();
        let c: Vec<f64> = (0..16).map(|i| f64::from(i) * 0.5).collect();
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(ai, (bi, ci))| *ai = bi + 3.0 * ci);
        assert_eq!(a[4], 4.0 + 3.0 * 2.0);

        let mut grid = [0u32; 12];
        grid.par_chunks_mut(4).enumerate().for_each(|(row, chunk)| {
            for v in chunk {
                *v = row as u32;
            }
        });
        assert_eq!(grid, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }
}
