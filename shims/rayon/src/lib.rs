//! Offline shim for `rayon` in two tiers:
//!
//! * the `par_iter` / `par_iter_mut` / `par_chunks_mut` slice entry points
//!   this workspace's kernels use, returning ordinary sequential `std`
//!   iterators (semantics identical to rayon for order-independent bodies;
//!   only the speedup is absent there);
//! * the structured-concurrency core — [`scope`], [`join`] and
//!   [`current_num_threads`] — implemented over `std::thread::scope`, so
//!   callers that fan work out in coarse chunks (one spawn per worker, not
//!   per item) get **real** multi-core execution with rayon's API shape.
//!
//! Code stays written in the parallel idiom so a real rayon drop-in
//! changes nothing at call sites.

use std::num::NonZeroUsize;

/// Number of worker threads a fan-out should assume: the host's available
/// parallelism (rayon reports its pool size here; the shim has no pool, so
/// the hardware limit is the honest equivalent).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// A scope handle for spawning borrowed tasks, mirroring `rayon::Scope`.
/// Tasks run on real OS threads; [`scope`] joins them all before returning.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from outside the scope. As in rayon,
    /// the closure receives the scope so tasks can spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Structured fork-join over real threads: every task spawned on the scope
/// completes before `scope` returns (panics in tasks propagate, as rayon's
/// do).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Run two closures, potentially in parallel, returning both results —
/// `rayon::join`. The first runs on a scoped thread, the second inline.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        (ha.join().expect("rayon::join task panicked"), rb)
    })
}

/// The rayon-style prelude: import `*` to get the `par_*` methods.
pub mod prelude {
    /// Parallel-iterator entry points on slices (sequential fallback).
    pub trait ParallelSlice<T> {
        /// Iterate shared references ("parallel" view of `iter`).
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Iterate in fixed-size chunks ("parallel" view of `chunks`).
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// Mutable parallel-iterator entry points on slices.
    pub trait ParallelSliceMut<T> {
        /// Iterate exclusive references ("parallel" view of `iter_mut`).
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Iterate mutable fixed-size chunks ("parallel" view of
        /// `chunks_mut`).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn scope_runs_borrowed_tasks_on_threads() {
        let data: Vec<u64> = (0..1000).collect();
        let mut partials = [0u64; 4];
        super::scope(|s| {
            for (chunk, out) in data.chunks(250).zip(partials.iter_mut()) {
                s.spawn(move |_| {
                    *out = chunk.iter().sum();
                });
            }
        });
        assert_eq!(partials.iter().sum::<u64>(), 1000 * 999 / 2);
    }

    #[test]
    fn scope_spawn_nests() {
        let mut inner_ran = false;
        super::scope(|s| {
            let flag = &mut inner_ran;
            s.spawn(move |s2| {
                s2.spawn(move |_| *flag = true);
            });
        });
        assert!(inner_ran);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "hi".len());
        assert_eq!((a, b), (42, 2));
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn zip_enumerate_for_each_chain() {
        let mut a = [0.0f64; 16];
        let b: Vec<f64> = (0..16).map(f64::from).collect();
        let c: Vec<f64> = (0..16).map(|i| f64::from(i) * 0.5).collect();
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(ai, (bi, ci))| *ai = bi + 3.0 * ci);
        assert_eq!(a[4], 4.0 + 3.0 * 2.0);

        let mut grid = [0u32; 12];
        grid.par_chunks_mut(4).enumerate().for_each(|(row, chunk)| {
            for v in chunk {
                *v = row as u32;
            }
        });
        assert_eq!(grid, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }
}
