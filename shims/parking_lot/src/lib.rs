//! Offline shim for `parking_lot`: the non-poisoning `Mutex` / `RwLock`
//! API this workspace uses, backed by `std::sync`.
//!
//! Poisoning is deliberately swallowed (`parking_lot` has no poison
//! concept): a panic while holding a lock still lets other threads lock.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(vec![0u64; 8]));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    l.write()[i] = i as u64 + 1;
                    l.read().iter().sum::<u64>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.read().iter().sum::<u64>(), 1 + 2 + 3 + 4);
    }
}
