//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes this workspace contains, with no dependency on `syn`/`quote`:
//! the input token stream is walked by hand into a tiny item model, and the
//! generated impls are emitted as source text and re-parsed.
//!
//! Supported: named-field structs, tuple structs (newtype serialises
//! transparently, wider tuples as arrays), enums with unit / newtype / tuple
//! / struct variants (externally tagged, like serde's default), and the
//! `#[serde(skip)]` field attribute. Generic items are intentionally not
//! supported — the workspace has none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name (or index) plus whether `#[serde(skip)]` was set.
struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    /// `struct S { .. }`
    Named(Vec<Field>),
    /// `struct S( .. );` with the given arity.
    Tuple(usize),
    /// `enum E { .. }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Does an attribute token pair (`#` + `[...]`) spell `serde(skip)`?
fn attr_is_serde_skip(group: &TokenStream) -> bool {
    let mut toks = group.clone().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consume leading attributes, reporting whether any was `#[serde(skip)]`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < toks.len() {
        let TokenTree::Punct(p) = &toks[i] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &toks[i + 1] else { break };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        skip |= attr_is_serde_skip(&g.stream());
        i += 2;
    }
    (i, skip)
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, skip) = skip_attrs(&toks, i);
        i = skip_vis(&toks, j);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("expected field name, got {:?}", toks[i]);
        };
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
        i += 1; // name
        i += 1; // ':'
        i = skip_type(&toks, i);
        i += 1; // ',' (or past the end)
    }
    fields
}

/// Count the fields of a tuple body `(A, B, ...)` (angle-bracket aware).
fn tuple_arity(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < toks.len() {
        let (j, _) = skip_attrs(&toks, i);
        i = skip_vis(&toks, j);
        i = skip_type(&toks, i);
        arity += 1;
        i += 1; // ','
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, _) = skip_attrs(&toks, i);
        i = j;
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("expected variant name, got {:?}", toks[i]);
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1; // ','
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Item-level attributes and visibility.
    loop {
        let (j, _) = skip_attrs(&toks, i);
        let k = skip_vis(&toks, j);
        if k == i {
            break;
        }
        i = k;
    }
    let TokenTree::Ident(kw) = &toks[i] else {
        panic!("expected struct/enum keyword, got {:?}", toks[i]);
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("expected item name, got {:?}", toks[i]);
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic item `{name}`");
        }
    }
    // Skip a `where` clause if present (none in this workspace, but cheap).
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace
                    || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }
    let shape = match (kw.as_str(), &toks[i]) {
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(tuple_arity(g.stream()))
        }
        ("struct", _) => Shape::Tuple(0),
        ("enum", TokenTree::Group(g)) => Shape::Enum(parse_variants(g.stream())),
        other => panic!("unsupported item shape: {other:?}"),
    };
    Item { name, shape }
}

// --------------------------------------------------------------- emission

fn emit_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__m.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
    )
}

fn named_field_reads(fields: &[Field], map_expr: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
        } else {
            s.push_str(&format!(
                "{0}: ::serde::Deserialize::from_value(::serde::value::map_get({map_expr}, \"{0}\").unwrap_or(&::serde::Value::Null))?,\n",
                f.name
            ));
        }
    }
    s
}

fn emit_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => format!(
            "let __m = __v.as_map().ok_or_else(|| ::serde::DeError::msg(\"expected map for {name}\"))?;\n\
             ::std::result::Result::Ok({name} {{\n{}\n}})",
            named_field_reads(fields, "__m")
        ),
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Shape::Tuple(n) => {
            let reads: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::msg(\"expected array for {name}\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::msg(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                reads.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the externally tagged map form.
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(_inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __s = _inner.as_seq().ok_or_else(|| ::serde::DeError::msg(\"expected array for {name}::{vn}\"))?;\n\
                             if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::msg(\"wrong arity for {name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            reads.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let __m = _inner.as_map().ok_or_else(|| ::serde::DeError::msg(\"expected map for {name}::{vn}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{\n{}\n}})\n}}\n",
                        named_field_reads(fields, "__m")
                    )),
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                   return match __s {{\n{unit_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                   }};\n\
                 }}\n\
                 let __m = __v.as_map().ok_or_else(|| ::serde::DeError::msg(\"expected string or map for {name}\"))?;\n\
                 if __m.len() != 1 {{ return ::std::result::Result::Err(::serde::DeError::msg(\"expected single-key map for {name}\")); }}\n\
                 let (__tag, _inner) = &__m[0];\n\
                 match __tag.as_str() {{\n{data_arms}\
                   __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n {body}\n }}\n}}\n"
    )
}
